//! High-level pipeline: the "just give me a streaming forecaster" API.
//!
//! [`UrclPipeline`] bundles everything a deployment needs — normalizer,
//! GraphWaveNet backbone, STSimSiam head, parameter store and the
//! continuous trainer — behind three calls:
//!
//! 1. [`UrclPipeline::new`] from a sensor network + dataset config,
//! 2. [`UrclPipeline::observe_period`] whenever a new streaming period
//!    (`D_i`) has accumulated: trains continually with replay,
//! 3. [`UrclPipeline::forecast`] for one-step-ahead predictions in
//!    physical units.
//!
//! The lower-level pieces stay public for research use; this type is for
//! users who want the paper's system, not its internals.

use crate::persist::{self, Checkpoint, CheckpointDir, PersistError, PipelineState};
use crate::simsiam::StSimSiam;
use crate::trainer::{ContinualTrainer, SetReport, TrainerConfig};
use urcl_graph::SensorNetwork;
use urcl_models::{Backbone, GraphWaveNet, GwnConfig};
use urcl_stdata::{ContinualSplit, DatasetConfig, Normalizer, SequenceData};
use urcl_tensor::autodiff::{Session, Tape};
use urcl_tensor::{ParamStore, Rng, Tensor};

/// A ready-to-stream URCL forecaster (GraphWaveNet backbone).
pub struct UrclPipeline {
    data_cfg: DatasetConfig,
    network: SensorNetwork,
    store: ParamStore,
    model: GraphWaveNet,
    simsiam: StSimSiam,
    trainer: ContinualTrainer,
    normalizer: Option<Normalizer>,
    periods_seen: usize,
}

impl UrclPipeline {
    /// Builds the pipeline. `trainer_cfg` controls epochs, replay and the
    /// framework components; the backbone geometry is derived from
    /// `data_cfg`.
    pub fn new(
        network: SensorNetwork,
        data_cfg: DatasetConfig,
        trainer_cfg: TrainerConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(
            network.num_nodes(),
            data_cfg.num_nodes,
            "network and dataset config disagree on node count"
        );
        let (model, simsiam, store) = Self::build_model(&network, &data_cfg, &trainer_cfg, seed);
        let trainer = ContinualTrainer::new(trainer_cfg);
        Self {
            data_cfg,
            network,
            store,
            model,
            simsiam,
            trainer,
            normalizer: None,
            periods_seen: 0,
        }
    }

    /// Constructs the pipeline's model pair and parameter store. The
    /// *layout* (parameter names and shapes) depends only on the configs,
    /// never on `seed` — which is what makes checkpoints portable across
    /// processes.
    fn build_model(
        network: &SensorNetwork,
        data_cfg: &DatasetConfig,
        trainer_cfg: &TrainerConfig,
        seed: u64,
    ) -> (GraphWaveNet, StSimSiam, ParamStore) {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(seed);
        let gwn_cfg = GwnConfig::small(
            data_cfg.num_nodes,
            data_cfg.num_channels(),
            data_cfg.input_steps,
            data_cfg.output_steps,
        );
        let latent = gwn_cfg.base.latent;
        let model = GraphWaveNet::new(&mut store, &mut rng, network, gwn_cfg);
        let simsiam = StSimSiam::new(&mut store, &mut rng, latent, latent, trainer_cfg.tau);
        (model, simsiam, store)
    }

    /// The backbone + parameter-layout template an **inference server**
    /// needs to load this pipeline's checkpoints in another process: the
    /// identical architecture, built with an arbitrary seed. Loading a
    /// checkpoint overwrites every parameter value; only the layout —
    /// names and shapes, which [`persist::copy_store_checked`] validates —
    /// must match, and that is fully determined by the two configs.
    ///
    /// The returned store also carries the STSimSiam head's parameters
    /// (they are part of the checkpoint layout even though forward-only
    /// serving never reads them).
    pub fn serving_parts(
        network: &SensorNetwork,
        data_cfg: &DatasetConfig,
        trainer_cfg: &TrainerConfig,
    ) -> (GraphWaveNet, ParamStore) {
        let (model, _simsiam, store) = Self::build_model(network, data_cfg, trainer_cfg, 0);
        (model, store)
    }

    /// [`Self::serving_parts`] with the backbone type-erased — the form a
    /// multi-tenant registry wants, where tenants with different dataset
    /// geometries (METR-LA, PEMS-BAY, …) must live in one homogeneous
    /// collection of `Box<dyn Backbone>`.
    pub fn serving_parts_dyn(
        network: &SensorNetwork,
        data_cfg: &DatasetConfig,
        trainer_cfg: &TrainerConfig,
    ) -> (Box<dyn Backbone + Send + Sync>, ParamStore) {
        let (model, store) = Self::serving_parts(network, data_cfg, trainer_cfg);
        (Box::new(model), store)
    }

    /// Number of streaming periods consumed so far.
    pub fn periods_seen(&self) -> usize {
        self.periods_seen
    }

    /// Read access to the trained parameters (for checkpointing via
    /// [`crate::persist`]).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Restores parameters from a checkpointed store with identical
    /// layout.
    pub fn restore(&mut self, store: &ParamStore) {
        self.store.copy_values_from(store);
    }

    /// Captures the full v2-checkpoint pipeline section: trainer state
    /// (RNG, Adam moments, replay buffer, RMIR stats, cursor), normalizer
    /// statistics and the period counter.
    pub fn pipeline_state(&self) -> PipelineState {
        PipelineState {
            trainer: self.trainer.snapshot(),
            normalizer: self.normalizer.clone(),
            periods_seen: self.periods_seen,
        }
    }

    /// Atomically writes a full-pipeline checkpoint into `dir` (rotating
    /// `latest`/`previous`). Returns the document size in bytes.
    pub fn save_checkpoint(
        &self,
        dir: &CheckpointDir,
        description: &str,
    ) -> Result<u64, PersistError> {
        dir.save(description, &self.store, Some(&self.pipeline_state()))
    }

    /// Resumes this pipeline from a full (v2) checkpoint: parameters,
    /// trainer state, normalizer and period counter all come from disk, so
    /// subsequent [`Self::observe_period`] calls continue the stream
    /// bitwise-identically to a never-interrupted process. Params-only
    /// checkpoints are rejected with [`PersistError::Format`] — use
    /// [`Self::restore`] plus [`Self::observe_period_statistics_only`]
    /// for those.
    pub fn resume_from(&mut self, ckpt: Checkpoint) -> Result<(), PersistError> {
        let Some(pipeline) = ckpt.pipeline else {
            return Err(PersistError::Format(
                "checkpoint has no pipeline section (params-only save?)".into(),
            ));
        };
        persist::copy_store_checked(&ckpt.store, &mut self.store)?;
        self.trainer.restore(pipeline.trainer);
        self.normalizer = pipeline.normalizer;
        self.periods_seen = pipeline.periods_seen;
        Ok(())
    }

    /// Fits the normalizer from a raw series without training — the
    /// restore path: a fresh process re-derives normalization statistics
    /// from the base period, then [`Self::restore`]s checkpointed
    /// weights.
    pub fn observe_period_statistics_only(&mut self, series: &Tensor) {
        assert_eq!(series.ndim(), 3, "series must be [T, N, C]");
        self.normalizer = Some(Normalizer::fit(series));
    }

    /// Ingests one streaming period of raw (physical-unit) data
    /// `[T, N, C]` and trains continually on it. The first period fits
    /// the normalizer (it is the base set). Returns the period's report
    /// in physical units.
    pub fn observe_period(&mut self, series: Tensor) -> SetReport {
        assert_eq!(series.ndim(), 3, "period must be [T, N, C]");
        assert_eq!(series.shape()[1], self.data_cfg.num_nodes, "node count");
        assert_eq!(
            series.shape()[2],
            self.data_cfg.num_channels(),
            "channel count"
        );
        if self.normalizer.is_none() {
            self.normalizer = Some(Normalizer::fit(&series));
        }
        let norm = self.normalizer.as_ref().expect("set above");
        let name = if self.periods_seen == 0 {
            "B_set".to_string()
        } else {
            format!("I{}_set", self.periods_seen)
        };
        let period = SequenceData {
            name,
            series: norm.transform(&series),
        };
        // Reuse the streaming trainer on a single-period split.
        let split = ContinualSplit {
            base: period,
            incremental: Vec::new(),
        };
        // Sets after the first must train with incremental epoch counts;
        // the trainer treats index 0 as "base", so adjust epochs when this
        // is not the true base period.
        let report = self.trainer.run(
            &self.model,
            Some(&self.simsiam),
            &mut self.store,
            &self.network,
            &split,
            &self.data_cfg,
            norm.scale(self.data_cfg.target_channel),
        );
        self.periods_seen += 1;
        report.sets.into_iter().next().expect("one period trained")
    }

    /// One-step forecast from a raw history window `[M, N, C]` in
    /// physical units. Returns `[H, N]` predictions, also in physical
    /// units.
    pub fn forecast(&self, window: &Tensor) -> Tensor {
        let norm = self
            .normalizer
            .as_ref()
            .expect("observe at least one period before forecasting");
        assert_eq!(
            window.shape(),
            &[
                self.data_cfg.input_steps,
                self.data_cfg.num_nodes,
                self.data_cfg.num_channels()
            ],
            "window must be [M, N, C]"
        );
        let x = norm.transform(window);
        let mut shape = vec![1];
        shape.extend_from_slice(x.shape());
        let x = x.reshape(&shape);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &self.store);
        let xv = sess.input(x);
        let pred = self.model.forward(&mut sess, xv).value(); // [1, H, N]
        let h = pred.shape()[1];
        let n = pred.shape()[2];
        norm.inverse_target(
            &pred.reshape(&[h, n]),
            self.data_cfg.target_channel,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_stdata::SyntheticDataset;

    fn quick_cfg() -> TrainerConfig {
        TrainerConfig {
            epochs_base: 2,
            epochs_incremental: 1,
            window_stride: 8,
            ..TrainerConfig::default()
        }
    }

    fn setup() -> (SyntheticDataset, UrclPipeline) {
        let ds = SyntheticDataset::generate(DatasetConfig::metr_la().tiny());
        let pipe = UrclPipeline::new(ds.network.clone(), ds.config.clone(), quick_cfg(), 3);
        (ds, pipe)
    }

    #[test]
    fn observe_then_forecast_in_physical_units() {
        let (ds, mut pipe) = setup();
        let split = ds.continual_split(2);
        let report = pipe.observe_period(split.base.series.clone());
        assert_eq!(report.name, "B_set");
        assert!(report.mae.is_finite());
        assert_eq!(pipe.periods_seen(), 1);

        // Forecast from the last window of the base period.
        let t = split.base.series.shape()[0];
        let window = split
            .base
            .series
            .narrow(0, t - ds.config.input_steps, ds.config.input_steps);
        let pred = pipe.forecast(&window);
        assert_eq!(
            pred.shape(),
            &[ds.config.output_steps, ds.config.num_nodes]
        );
        // Speed channel: predictions must land in a plausible band.
        assert!(pred.data().iter().all(|&v| (0.0..=100.0).contains(&v)),
            "{pred:?}");
    }

    #[test]
    fn streaming_periods_accumulate() {
        let (ds, mut pipe) = setup();
        let split = ds.continual_split(2);
        pipe.observe_period(split.base.series.clone());
        let r1 = pipe.observe_period(split.incremental[0].series.clone());
        assert_eq!(r1.name, "I1_set");
        assert_eq!(pipe.periods_seen(), 2);
    }

    #[test]
    #[should_panic(expected = "observe at least one period")]
    fn forecast_before_data_panics() {
        let (ds, pipe) = setup();
        let window = Tensor::zeros(&[
            ds.config.input_steps,
            ds.config.num_nodes,
            ds.config.num_channels(),
        ]);
        let _ = pipe.forecast(&window);
    }

    #[test]
    fn checkpoint_roundtrip_through_pipeline() {
        let (ds, mut pipe) = setup();
        let split = ds.continual_split(2);
        pipe.observe_period(split.base.series.clone());
        let t = split.base.series.shape()[0];
        let window = split
            .base
            .series
            .narrow(0, t - ds.config.input_steps, ds.config.input_steps);
        let before = pipe.forecast(&window);

        // Save, perturb, restore: forecasts must match again.
        let saved = pipe.store().clone();
        let ids: Vec<_> = pipe.store.ids().collect();
        for id in ids {
            for v in pipe.store.value_mut(id).data_mut() {
                *v += 0.05;
            }
        }
        assert_ne!(pipe.forecast(&window), before);
        pipe.restore(&saved);
        assert_eq!(pipe.forecast(&window), before);
    }

    /// Full v2 checkpoint between streaming periods: a fresh process (even
    /// one built with a different seed) that resumes from disk must finish
    /// the stream bitwise-identically to the uninterrupted one.
    #[test]
    fn full_checkpoint_between_periods_resumes_bitwise() {
        let (ds, mut interrupted) = setup();
        let split = ds.continual_split(2);

        // Reference: both periods in one process.
        let mut uninterrupted =
            UrclPipeline::new(ds.network.clone(), ds.config.clone(), quick_cfg(), 3);
        uninterrupted.observe_period(split.base.series.clone());
        let ref_report = uninterrupted.observe_period(split.incremental[0].series.clone());

        // Interrupted: first period, checkpoint, "crash".
        interrupted.observe_period(split.base.series.clone());
        let dir_path = std::env::temp_dir()
            .join(format!("urcl-test-{}-pipe-resume", std::process::id()));
        std::fs::remove_dir_all(&dir_path).ok();
        let slots = CheckpointDir::new(&dir_path).unwrap();
        interrupted.save_checkpoint(&slots, "after base period").unwrap();
        drop(interrupted);

        // Fresh process: different seed, so every bit of matching state
        // must have come from the checkpoint.
        let mut resumed =
            UrclPipeline::new(ds.network.clone(), ds.config.clone(), quick_cfg(), 999);
        resumed.resume_from(slots.load().unwrap()).unwrap();
        assert_eq!(resumed.periods_seen(), 1);
        let res_report = resumed.observe_period(split.incremental[0].series.clone());
        std::fs::remove_dir_all(&dir_path).ok();

        assert_eq!(res_report.name, ref_report.name);
        assert_eq!(res_report.mae.to_bits(), ref_report.mae.to_bits());
        assert_eq!(res_report.rmse.to_bits(), ref_report.rmse.to_bits());
        for (a, b) in uninterrupted.store().ids().zip(resumed.store().ids()) {
            let (ta, tb) = (uninterrupted.store().value(a), resumed.store().value(b));
            assert_eq!(ta.shape(), tb.shape());
            for (x, y) in ta.data().iter().zip(tb.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn params_only_checkpoint_rejected_by_resume() {
        let (_, mut pipe) = setup();
        let ckpt = Checkpoint {
            version: 1,
            description: "legacy".into(),
            store: pipe.store().clone(),
            pipeline: None,
        };
        assert!(matches!(
            pipe.resume_from(ckpt),
            Err(PersistError::Format(_))
        ));
    }
}
