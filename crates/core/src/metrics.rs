//! Evaluation metrics (Eq. 30): MAE, RMSE and MAPE.

use urcl_tensor::Tensor;

/// Mean absolute error between two equal-shaped tensors.
pub fn mae(pred: &Tensor, truth: &Tensor) -> f32 {
    assert_eq!(pred.shape(), truth.shape(), "metric shape mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.sub(truth).map(f32::abs).mean_all()
}

/// Root mean square error between two equal-shaped tensors.
pub fn rmse(pred: &Tensor, truth: &Tensor) -> f32 {
    assert_eq!(pred.shape(), truth.shape(), "metric shape mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.sub(truth).map(|d| d * d).mean_all().sqrt()
}

/// Accumulates MAE/RMSE/MAPE over minibatches, weighting by element count
/// so the final numbers equal a single pass over all data.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    abs_sum: f64,
    sq_sum: f64,
    count: u64,
    ape_sum: f64,
    ape_count: u64,
}

/// Targets with |truth| below this are excluded from MAPE — the standard
/// guard against near-zero denominators blowing the percentage up.
const MAPE_MIN_TRUTH: f64 = 1e-4;

impl Metrics {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one prediction batch.
    pub fn update(&mut self, pred: &Tensor, truth: &Tensor) {
        assert_eq!(pred.shape(), truth.shape(), "metric shape mismatch");
        for (p, t) in pred.data().iter().zip(truth.data()) {
            let d = (p - t) as f64;
            self.abs_sum += d.abs();
            self.sq_sum += d * d;
            self.count += 1;
            let t_abs = (*t as f64).abs();
            if t_abs >= MAPE_MIN_TRUTH {
                self.ape_sum += d.abs() / t_abs;
                self.ape_count += 1;
            }
        }
    }

    /// Number of accumulated elements.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean absolute error so far.
    pub fn mae(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.abs_sum / self.count as f64) as f32
        }
    }

    /// Root mean square error so far.
    pub fn rmse(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sq_sum / self.count as f64).sqrt() as f32
        }
    }

    /// Mean absolute percentage error so far, in percent. Computed over
    /// elements whose truth is meaningfully non-zero; scale-free, so it
    /// reads the same in normalized and physical units when data is
    /// min-max scaled from a zero minimum.
    pub fn mape(&self) -> f32 {
        if self.ape_count == 0 {
            0.0
        } else {
            (100.0 * self.ape_sum / self.ape_count as f64) as f32
        }
    }

    /// Returns (MAE, RMSE) scaled by `scale` — converts normalized-space
    /// errors back into physical units under min-max scaling.
    pub fn scaled(&self, scale: f32) -> (f32, f32) {
        (self.mae() * scale, self.rmse() * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_rmse_known_values() {
        let p = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        let t = Tensor::from_vec(vec![1.0, 3.0, 1.0, 4.0], &[4]);
        // errors: 0, 1, 2, 0
        assert!((mae(&p, &t) - 0.75).abs() < 1e-6);
        assert!((rmse(&p, &t) - (5.0f32 / 4.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn accumulator_matches_single_pass() {
        let p1 = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let t1 = Tensor::from_vec(vec![2.0, 2.0], &[2]);
        let p2 = Tensor::from_vec(vec![0.0], &[1]);
        let t2 = Tensor::from_vec(vec![3.0], &[1]);
        let mut m = Metrics::new();
        m.update(&p1, &t1);
        m.update(&p2, &t2);
        let pall = Tensor::from_vec(vec![1.0, 2.0, 0.0], &[3]);
        let tall = Tensor::from_vec(vec![2.0, 2.0, 3.0], &[3]);
        assert!((m.mae() - mae(&pall, &tall)).abs() < 1e-6);
        assert!((m.rmse() - rmse(&pall, &tall)).abs() < 1e-6);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn rmse_at_least_mae() {
        let p = Tensor::from_vec(vec![1.0, 5.0, -2.0, 0.5], &[4]);
        let t = Tensor::zeros(&[4]);
        assert!(rmse(&p, &t) >= mae(&p, &t));
    }

    #[test]
    fn scaled_converts_units() {
        let mut m = Metrics::new();
        m.update(
            &Tensor::from_vec(vec![0.5], &[1]),
            &Tensor::from_vec(vec![0.0], &[1]),
        );
        let (mae_s, rmse_s) = m.scaled(60.0);
        assert!((mae_s - 30.0).abs() < 1e-4);
        assert!((rmse_s - 30.0).abs() < 1e-4);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new();
        assert_eq!(m.mae(), 0.0);
        assert_eq!(m.rmse(), 0.0);
        assert_eq!(m.mape(), 0.0);
    }

    #[test]
    fn mape_known_value_and_zero_guard() {
        let mut m = Metrics::new();
        // truths 2.0 and 4.0: errors 25% and 50%; the zero truth is skipped.
        m.update(
            &Tensor::from_vec(vec![2.5, 2.0, 7.0], &[3]),
            &Tensor::from_vec(vec![2.0, 4.0, 0.0], &[3]),
        );
        assert!((m.mape() - 37.5).abs() < 1e-4);
    }
}
