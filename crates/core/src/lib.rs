//! # urcl-core
//!
//! The Unified Replay-based Continuous Learning framework (URCL) of
//! *Miao et al., ICDE 2024* — the paper's primary contribution, built on
//! the substrates in the sibling crates.
//!
//! The framework's three modules (Fig. 1) map onto this crate as:
//!
//! * **Data integration** — [`replay::ReplayBuffer`] stores previously
//!   learned observations; [`rmir`] implements the ranking-based maximally
//!   interfered retrieval sampler (Eq. 3 + Pearson ranking); [`mixup`]
//!   fuses replayed and current observations with λ ~ Beta(α, α)
//!   (Eq. 4–5).
//! * **Spatio-temporal continuous representation learning (STCRL)** —
//!   [`augment`] provides the five augmentations DN/DE/SG/AE/TS
//!   (Eq. 6–11); [`simsiam::StSimSiam`] is the two-encoder + projector
//!   network trained with the symmetric GraphCL loss (Eq. 12–16).
//! * **Spatio-temporal prediction** — any [`urcl_models::Backbone`]
//!   supplies the shared STEncoder and the STDecoder (Eq. 17, 27–28).
//!
//! [`trainer::ContinualTrainer`] ties it all together following
//! Algorithm 1, and also implements the paper's comparison strategies
//! (OneFitAll, FinetuneST) and the four ablations of Fig. 6.

#![warn(missing_docs)]

pub mod augment;
pub mod ewc;
pub mod metrics;
pub mod mixup;
pub mod persist;
pub mod pipeline;
pub mod replay;
pub mod rmir;
pub mod simsiam;
pub mod timing;
pub mod trainer;

pub use augment::{Augmentation, AugmentedView, TimeShiftKind};
pub use ewc::EwcState;
pub use metrics::{mae, rmse, Metrics};
pub use mixup::st_mixup;
pub use persist::{
    load_checkpoint, load_checkpoint_into, save_checkpoint, save_full_checkpoint,
    Checkpoint, CheckpointDir, CheckpointFingerprint, PersistError, PipelineState,
};
pub use pipeline::UrclPipeline;
pub use replay::ReplayBuffer;
pub use rmir::{rmir_sample, RmirPlans, RmirStats};
pub use simsiam::StSimSiam;
pub use timing::Stopwatch;
pub use trainer::{
    Ablation, ContinualTrainer, HookAction, NoopHook, RunOutcome, RunReport, SetReport,
    StepBudget, StepInfo, Strategy, TrainCursor, TrainHook, TrainerConfig,
    TrainerSnapshot,
};
