//! The replay buffer ℬ: an explicit memory holding a subset of previously
//! learned observations (Section IV-B). Organised as a bounded FIFO queue
//! of size 256 in the paper (Section V-A4) — once full, the oldest
//! observation is evicted.

use std::collections::VecDeque;
use urcl_stdata::{stack_samples, Batch, Sample};
use urcl_tensor::Rng;

/// Bounded FIFO buffer of previously trained observations.
#[derive(Clone)]
pub struct ReplayBuffer {
    entries: VecDeque<Sample>,
    capacity: usize,
}

impl ReplayBuffer {
    /// Creates a buffer with the given capacity (the paper uses 256).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer capacity must be positive");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Rebuilds a buffer from checkpointed contents. `samples` are in
    /// eviction order (oldest first), exactly as produced by
    /// [`Self::iter`]. Panics if more samples than `capacity` are given —
    /// a well-formed checkpoint can never contain them.
    pub fn from_samples(capacity: usize, samples: Vec<Sample>) -> Self {
        assert!(capacity > 0, "replay buffer capacity must be positive");
        assert!(
            samples.len() <= capacity,
            "checkpoint holds {} samples but capacity is {capacity}",
            samples.len()
        );
        Self {
            entries: samples.into(),
            capacity,
        }
    }

    /// Maximum number of stored observations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts one observation, evicting the oldest when full. Per
    /// Section IV-B the buffer stores the *original* (pre-STMixup)
    /// observations.
    pub fn push(&mut self, sample: Sample) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(sample);
    }

    /// Inserts every sample of a slice.
    pub fn extend(&mut self, samples: &[Sample]) {
        for s in samples {
            self.push(s.clone());
        }
    }

    /// Observation at a stable index (0 = oldest). Panics with a clear
    /// message when the index is past the current occupancy — callers must
    /// draw indices against [`Self::len`], never [`Self::capacity`].
    pub fn get(&self, idx: usize) -> &Sample {
        assert!(
            idx < self.entries.len(),
            "replay index {idx} out of range (occupancy {}, capacity {})",
            self.entries.len(),
            self.capacity
        );
        &self.entries[idx]
    }

    /// Draws `k` distinct observations uniformly (the baseline sampler the
    /// RMIR ablation w/o_RMIR falls back to).
    ///
    /// Underfull buffers are explicit, not an error: the draw is clamped
    /// to the current occupancy, so an empty buffer yields `[]`, a buffer
    /// holding one observation yields at most that observation, and
    /// `k >= len` returns every stored observation (in random order). The
    /// RNG is only consumed when something is actually drawn, keeping
    /// fixed-seed streams reproducible across occupancy levels.
    pub fn sample_uniform(&self, k: usize, rng: &mut Rng) -> Vec<Sample> {
        let k = k.min(self.len());
        if k == 0 {
            return Vec::new();
        }
        rng.sample_indices(self.len(), k)
            .into_iter()
            .map(|i| self.entries[i].clone())
            .collect()
    }

    /// Stacks the observations at `indices` into a batch. Panics (via
    /// [`Self::get`]) if any index is past the current occupancy; an empty
    /// index list panics in `stack_samples` — sample first, then gather.
    pub fn gather(&self, indices: &[usize]) -> Batch {
        let samples: Vec<Sample> = indices.iter().map(|&i| self.get(i).clone()).collect();
        stack_samples(&samples)
    }

    /// Stacks the entire buffer into one batch (used by RMIR to score all
    /// candidates in a single forward pass).
    pub fn as_batch(&self) -> Option<Batch> {
        if self.is_empty() {
            return None;
        }
        let samples: Vec<Sample> = self.entries.iter().cloned().collect();
        Some(stack_samples(&samples))
    }

    /// Iterates stored observations oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_tensor::Tensor;

    fn sample(tag: f32) -> Sample {
        Sample {
            x: Tensor::full(&[2, 3, 1], tag),
            y: Tensor::full(&[1, 3], tag),
        }
    }

    #[test]
    fn fifo_eviction() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(sample(i as f32));
        }
        assert_eq!(buf.len(), 3);
        // Oldest remaining is tag 2.
        assert_eq!(buf.get(0).x.data()[0], 2.0);
        assert_eq!(buf.get(2).x.data()[0], 4.0);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut buf = ReplayBuffer::new(4);
        let samples: Vec<Sample> = (0..10).map(|i| sample(i as f32)).collect();
        buf.extend(&samples);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.capacity(), 4);
    }

    #[test]
    fn uniform_sampling_bounds() {
        let mut buf = ReplayBuffer::new(8);
        buf.extend(&(0..5).map(|i| sample(i as f32)).collect::<Vec<_>>());
        let mut rng = Rng::seed_from_u64(1);
        let got = buf.sample_uniform(3, &mut rng);
        assert_eq!(got.len(), 3);
        // Asking for more than stored returns everything.
        let all = buf.sample_uniform(99, &mut rng);
        assert_eq!(all.len(), 5);
        // Empty buffer returns nothing.
        let empty = ReplayBuffer::new(4);
        assert!(empty.sample_uniform(2, &mut rng).is_empty());
    }

    #[test]
    fn gather_and_as_batch() {
        let mut buf = ReplayBuffer::new(8);
        buf.extend(&(0..4).map(|i| sample(i as f32)).collect::<Vec<_>>());
        let b = buf.gather(&[3, 0]);
        assert_eq!(b.x.shape(), &[2, 2, 3, 1]);
        assert_eq!(b.x.data()[0], 3.0);
        let full = buf.as_batch().unwrap();
        assert_eq!(full.len(), 4);
        assert!(ReplayBuffer::new(2).as_batch().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }

    /// Occupancy sweep 0, 1, capacity-1, capacity: sampling behaviour must
    /// be explicit at every fill level.
    #[test]
    fn sampling_across_occupancy_levels() {
        let cap = 4;
        let mut rng = Rng::seed_from_u64(7);
        for occupancy in [0usize, 1, cap - 1, cap] {
            let mut buf = ReplayBuffer::new(cap);
            buf.extend(&(0..occupancy).map(|i| sample(i as f32)).collect::<Vec<_>>());
            assert_eq!(buf.len(), occupancy);
            // Ask for fewer, exactly, and more than stored.
            for k in [0usize, 1, occupancy, occupancy + 3] {
                let got = buf.sample_uniform(k, &mut rng);
                assert_eq!(got.len(), k.min(occupancy), "occ {occupancy}, k {k}");
            }
            // as_batch mirrors the same rule: None when empty, else all.
            match buf.as_batch() {
                None => assert_eq!(occupancy, 0),
                Some(b) => assert_eq!(b.len(), occupancy),
            }
        }
    }

    #[test]
    fn empty_buffer_sampling_consumes_no_rng() {
        let buf = ReplayBuffer::new(4);
        let mut a = Rng::seed_from_u64(3);
        let mut b = Rng::seed_from_u64(3);
        assert!(buf.sample_uniform(5, &mut a).is_empty());
        // The stream was untouched: both generators still agree.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "out of range (occupancy 2, capacity 4)")]
    fn get_past_occupancy_panics_clearly() {
        let mut buf = ReplayBuffer::new(4);
        buf.extend(&[sample(0.0), sample(1.0)]);
        let _ = buf.get(2); // within capacity, past occupancy
    }

    #[test]
    fn from_samples_restores_contents_and_eviction_order() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(sample(i as f32));
        }
        let rebuilt =
            ReplayBuffer::from_samples(buf.capacity(), buf.iter().cloned().collect());
        assert_eq!(rebuilt.len(), buf.len());
        assert_eq!(rebuilt.capacity(), 3);
        for i in 0..buf.len() {
            assert_eq!(rebuilt.get(i).x.data(), buf.get(i).x.data());
        }
        // Eviction continues from the restored order.
        let mut rebuilt = rebuilt;
        rebuilt.push(sample(9.0));
        assert_eq!(rebuilt.get(0).x.data()[0], 3.0);
        assert_eq!(rebuilt.get(2).x.data()[0], 9.0);
    }

    #[test]
    #[should_panic(expected = "capacity is 2")]
    fn from_samples_overflow_rejected() {
        let _ = ReplayBuffer::from_samples(2, (0..3).map(|i| sample(i as f32)).collect());
    }
}
