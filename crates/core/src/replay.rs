//! The replay buffer ℬ: an explicit memory holding a subset of previously
//! learned observations (Section IV-B). Organised as a bounded FIFO queue
//! of size 256 in the paper (Section V-A4) — once full, the oldest
//! observation is evicted.

use std::collections::VecDeque;
use urcl_stdata::{stack_samples, Batch, Sample};
use urcl_tensor::Rng;

/// Bounded FIFO buffer of previously trained observations.
#[derive(Clone)]
pub struct ReplayBuffer {
    entries: VecDeque<Sample>,
    capacity: usize,
}

impl ReplayBuffer {
    /// Creates a buffer with the given capacity (the paper uses 256).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer capacity must be positive");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of stored observations.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts one observation, evicting the oldest when full. Per
    /// Section IV-B the buffer stores the *original* (pre-STMixup)
    /// observations.
    pub fn push(&mut self, sample: Sample) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(sample);
    }

    /// Inserts every sample of a slice.
    pub fn extend(&mut self, samples: &[Sample]) {
        for s in samples {
            self.push(s.clone());
        }
    }

    /// Observation at a stable index (0 = oldest).
    pub fn get(&self, idx: usize) -> &Sample {
        &self.entries[idx]
    }

    /// Draws `k` distinct observations uniformly (the baseline sampler the
    /// RMIR ablation w/o_RMIR falls back to). Returns fewer when the
    /// buffer holds fewer.
    pub fn sample_uniform(&self, k: usize, rng: &mut Rng) -> Vec<Sample> {
        let k = k.min(self.len());
        if k == 0 {
            return Vec::new();
        }
        rng.sample_indices(self.len(), k)
            .into_iter()
            .map(|i| self.entries[i].clone())
            .collect()
    }

    /// Stacks the observations at `indices` into a batch.
    pub fn gather(&self, indices: &[usize]) -> Batch {
        let samples: Vec<Sample> = indices.iter().map(|&i| self.entries[i].clone()).collect();
        stack_samples(&samples)
    }

    /// Stacks the entire buffer into one batch (used by RMIR to score all
    /// candidates in a single forward pass).
    pub fn as_batch(&self) -> Option<Batch> {
        if self.is_empty() {
            return None;
        }
        let samples: Vec<Sample> = self.entries.iter().cloned().collect();
        Some(stack_samples(&samples))
    }

    /// Iterates stored observations oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_tensor::Tensor;

    fn sample(tag: f32) -> Sample {
        Sample {
            x: Tensor::full(&[2, 3, 1], tag),
            y: Tensor::full(&[1, 3], tag),
        }
    }

    #[test]
    fn fifo_eviction() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(sample(i as f32));
        }
        assert_eq!(buf.len(), 3);
        // Oldest remaining is tag 2.
        assert_eq!(buf.get(0).x.data()[0], 2.0);
        assert_eq!(buf.get(2).x.data()[0], 4.0);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut buf = ReplayBuffer::new(4);
        let samples: Vec<Sample> = (0..10).map(|i| sample(i as f32)).collect();
        buf.extend(&samples);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.capacity(), 4);
    }

    #[test]
    fn uniform_sampling_bounds() {
        let mut buf = ReplayBuffer::new(8);
        buf.extend(&(0..5).map(|i| sample(i as f32)).collect::<Vec<_>>());
        let mut rng = Rng::seed_from_u64(1);
        let got = buf.sample_uniform(3, &mut rng);
        assert_eq!(got.len(), 3);
        // Asking for more than stored returns everything.
        let all = buf.sample_uniform(99, &mut rng);
        assert_eq!(all.len(), 5);
        // Empty buffer returns nothing.
        let empty = ReplayBuffer::new(4);
        assert!(empty.sample_uniform(2, &mut rng).is_empty());
    }

    #[test]
    fn gather_and_as_batch() {
        let mut buf = ReplayBuffer::new(8);
        buf.extend(&(0..4).map(|i| sample(i as f32)).collect::<Vec<_>>());
        let b = buf.gather(&[3, 0]);
        assert_eq!(b.x.shape(), &[2, 2, 3, 1]);
        assert_eq!(b.x.data()[0], 3.0);
        let full = buf.as_batch().unwrap();
        assert_eq!(full.len(), 4);
        assert!(ReplayBuffer::new(2).as_batch().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }
}
