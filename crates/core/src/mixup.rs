//! STMixup (Section IV-B2, Eq. 4–5): interpolates current observations
//! with replayed ones, `x̃ = λ·x_M + (1−λ)·x_ℬ` with λ ~ Beta(α, α),
//! following Vicinal Risk Minimization to enlarge the training support and
//! regularise against concept drift.

use urcl_stdata::Batch;
use urcl_tensor::Rng;

/// Mixes a current batch with a replay batch (Eq. 5).
///
/// The replay batch may be smaller than the current one (early in the
/// stream the buffer is still filling); replayed rows are tiled cyclically
/// to match. One λ is drawn per call, matching the paper's formulation
/// over the whole sampled set. λ is folded to `max(λ, 1−λ)` so the
/// *current* observations always carry the larger weight — under the
/// paper's 100-epoch budget a replay-dominated batch is harmless, but at
/// our reduced epoch counts it starves adaptation to new regimes.
///
/// Returns the interpolated batch and the λ used.
pub fn st_mixup(current: &Batch, replay: &Batch, alpha: f32, rng: &mut Rng) -> (Batch, f32) {
    assert!(alpha > 0.0, "Beta concentration must be positive");
    assert!(!current.is_empty() && !replay.is_empty(), "empty batch in mixup");
    assert_eq!(
        current.x.shape()[1..],
        replay.x.shape()[1..],
        "mixup sample shapes differ"
    );
    let raw = rng.beta(alpha, alpha);
    let lambda = raw.max(1.0 - raw);
    let b = current.len();
    let rb = replay.len();

    // Tile the replay batch up to the current batch size.
    let tile = |src: &urcl_tensor::Tensor| {
        let per = src.len() / rb;
        let mut data = Vec::with_capacity(b * per);
        for i in 0..b {
            let r = i % rb;
            data.extend_from_slice(&src.data()[r * per..(r + 1) * per]);
        }
        let mut shape = src.shape().to_vec();
        shape[0] = b;
        urcl_tensor::Tensor::from_vec(data, &shape)
    };
    let rx = tile(&replay.x);
    let ry = tile(&replay.y);

    let x = current.x.scale(lambda).add(&rx.scale(1.0 - lambda));
    let y = current.y.scale(lambda).add(&ry.scale(1.0 - lambda));
    (Batch { x, y }, lambda)
}

/// The w/o_STU ablation: instead of interpolating, concatenates the replay
/// batch onto the current one along the batch axis.
pub fn concat_replay(current: &Batch, replay: &Batch) -> Batch {
    assert_eq!(
        current.x.shape()[1..],
        replay.x.shape()[1..],
        "concat sample shapes differ"
    );
    Batch {
        x: urcl_tensor::Tensor::concat(&[&current.x, &replay.x], 0),
        y: urcl_tensor::Tensor::concat(&[&current.y, &replay.y], 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_tensor::Tensor;

    fn batch(b: usize, v: f32) -> Batch {
        Batch {
            x: Tensor::full(&[b, 2, 3, 1], v),
            y: Tensor::full(&[b, 1, 3], v),
        }
    }

    #[test]
    fn mixup_is_convex_combination() {
        let cur = batch(4, 1.0);
        let rep = batch(4, 0.0);
        let mut rng = Rng::seed_from_u64(1);
        let (mixed, lambda) = st_mixup(&cur, &rep, 0.8, &mut rng);
        assert!((0.0..=1.0).contains(&lambda));
        // Every x entry equals λ·1 + (1−λ)·0 = λ.
        assert!(mixed.x.data().iter().all(|&v| (v - lambda).abs() < 1e-6));
        assert!(mixed.y.data().iter().all(|&v| (v - lambda).abs() < 1e-6));
    }

    #[test]
    fn smaller_replay_batch_tiles() {
        let cur = batch(5, 2.0);
        let rep = batch(2, 0.0);
        let mut rng = Rng::seed_from_u64(2);
        let (mixed, _lambda) = st_mixup(&cur, &rep, 1.0, &mut rng);
        assert_eq!(mixed.x.shape()[0], 5);
        assert_eq!(mixed.y.shape()[0], 5);
    }

    #[test]
    fn identical_batches_are_fixed_point() {
        let cur = batch(3, 0.7);
        let mut rng = Rng::seed_from_u64(3);
        let (mixed, _) = st_mixup(&cur, &cur, 0.5, &mut rng);
        assert!(mixed.x.data().iter().all(|&v| (v - 0.7).abs() < 1e-6));
    }

    #[test]
    fn concat_replay_stacks_batches() {
        let cur = batch(3, 1.0);
        let rep = batch(2, 0.0);
        let cat = concat_replay(&cur, &rep);
        assert_eq!(cat.len(), 5);
        assert_eq!(cat.x.data()[0], 1.0);
        assert_eq!(*cat.x.data().last().unwrap(), 0.0);
    }

    #[test]
    fn lambda_folded_to_current_dominant_half() {
        let cur = batch(1, 1.0);
        let rep = batch(1, 0.0);
        let mut rng = Rng::seed_from_u64(4);
        let n = 2000;
        let lambdas: Vec<f32> = (0..n)
            .map(|_| st_mixup(&cur, &rep, 2.0, &mut rng).1)
            .collect();
        // Folding guarantees λ ∈ [0.5, 1]: current data always dominates.
        assert!(lambdas.iter().all(|&l| (0.5..=1.0).contains(&l)));
        let mean: f32 = lambdas.iter().sum::<f32>() / n as f32;
        // E[max(λ, 1−λ)] for Beta(2,2) is 11/16 = 0.6875.
        assert!((mean - 0.6875).abs() < 0.03, "λ mean {mean}");
    }
}
