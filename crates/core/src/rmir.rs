//! Ranking-based Maximally Interfered Retrieval (RMIR, Section IV-B1).
//!
//! Instead of sampling the replay buffer uniformly, RMIR selects the
//! observations that (a) would be *most negatively impacted* by the
//! imminent parameter update — their loss rises the most under the
//! virtual update θᵛ = θ − α∇L of Eq. 3 — and then (b) ranks those
//! candidates by Pearson similarity to the current window, exploiting the
//! periodicity of traffic (Section IV-B1's temporal-correlation
//! argument).

use crate::replay::ReplayBuffer;
use urcl_models::Backbone;
use urcl_stdata::Batch;
use urcl_tensor::autodiff::{Session, Tape};
use urcl_tensor::{plan_enabled, ExecPlan, ParamStore, PlanSpec, PolySpec, Tensor};

/// Running statistics of RMIR selection over a training run. The trainer
/// accumulates these; they are part of the v2 full-pipeline checkpoint so
/// a resumed process reports the same cumulative selection activity as an
/// uninterrupted one (and so dashboards built on them survive restarts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RmirStats {
    /// Number of virtual updates θᵛ = θ − α∇L performed (one per RMIR
    /// sampling round, Eq. 3).
    pub virtual_updates: u64,
    /// Total buffer observations selected for replay by RMIR.
    pub selected: u64,
}

impl RmirStats {
    /// Records one sampling round that picked `picked` observations.
    pub fn record_round(&mut self, picked: usize) {
        self.virtual_updates += 1;
        self.selected += picked as u64;
    }
}

/// Compiled plans for RMIR's two per-step graphs: the virtual-update
/// training loss (inputs `[x, y]`) and the forward-only scoring pass
/// (input `[x]`). Both compile batch-polymorphic, so one plan each covers
/// every minibatch and candidate-pool size the stream produces. Plans
/// resolve parameters from whichever [`ParamStore`] a replay passes —
/// that is what lets the *same* compiled graph score the real and the
/// virtually-updated parameters. Derived state: the owning trainer drops
/// it whenever its own plan cache is dropped.
#[derive(Default)]
pub struct RmirPlans {
    virt: Option<ExecPlan>,
    score: Option<ExecPlan>,
}

impl RmirPlans {
    /// Drops both plans; the next [`rmir_sample`] call recompiles.
    pub fn clear(&mut self) {
        self.virt = None;
        self.score = None;
    }
}

/// Records `MAE(f_θ(x), y)` — RMIR's virtual-update loss — and compiles
/// it batch-polymorphic (second recording at `b + 1`).
fn compile_virt_plan(backbone: &dyn Backbone, store: &ParamStore, batch: &Batch) -> ExecPlan {
    let _compile_sp = urcl_trace::span("plan_compile");
    let record = |x: &Tensor, y: &Tensor| {
        let tape = Tape::new();
        let (root, inputs, binds);
        {
            let mut sess = Session::new(&tape, store);
            let xv = sess.input(x.clone());
            let yv = sess.input(y.clone());
            let loss = backbone.forward(&mut sess, xv).sub(yv).abs().mean_all();
            root = loss.index();
            inputs = vec![xv.index(), yv.index()];
            binds = sess.into_bindings();
        }
        (tape, root, inputs, binds)
    };
    let (tape0, root, inputs, binds) = record(&batch.x, &batch.y);
    let b0 = batch.x.shape()[0];
    let mut xs = batch.x.shape().to_vec();
    let mut ys = batch.y.shape().to_vec();
    xs[0] = b0 + 1;
    ys[0] = b0 + 1;
    let (tape1, _, _, _) = record(&Tensor::zeros(&xs), &Tensor::zeros(&ys));
    ExecPlan::compile(
        &tape0,
        &PlanSpec {
            root: Some(root),
            inputs: &inputs,
            outputs: &[],
            bindings: &binds,
            poly: Some(PolySpec {
                tape: &tape1,
                batch0: b0,
                batch1: b0 + 1,
            }),
        },
    )
}

/// Records the forward pass alone and compiles it batch-polymorphic; the
/// per-sample MAE reduction happens off-tape on the predictions, exactly
/// as in the interpreter path of [`per_sample_mae`].
fn compile_score_plan(backbone: &dyn Backbone, store: &ParamStore, x0: &Tensor) -> ExecPlan {
    let _compile_sp = urcl_trace::span("plan_compile");
    let record = |x: &Tensor| {
        let tape = Tape::new();
        let (inputs, outputs, binds);
        {
            let mut sess = Session::new(&tape, store);
            let xv = sess.input(x.clone());
            let pred = backbone.forward(&mut sess, xv);
            inputs = vec![xv.index()];
            outputs = vec![pred.index()];
            binds = sess.into_bindings();
        }
        (tape, inputs, outputs, binds)
    };
    let (tape0, inputs, outputs, binds) = record(x0);
    let b0 = x0.shape()[0];
    let mut xs = x0.shape().to_vec();
    xs[0] = b0 + 1;
    let (tape1, _, _, _) = record(&Tensor::zeros(&xs));
    ExecPlan::compile(
        &tape0,
        &PlanSpec {
            root: None,
            inputs: &inputs,
            outputs: &outputs,
            bindings: &binds,
            poly: Some(PolySpec {
                tape: &tape1,
                batch0: b0,
                batch1: b0 + 1,
            }),
        },
    )
}

/// Selects `select` buffer indices for replay.
///
/// * `pool` — buffer indices forming the candidate pool to score. Scoring
///   requires two forward passes over the pool, so the trainer draws a
///   random pool (e.g. 48 of 256) instead of the whole buffer — a
///   documented CPU-budget approximation of the paper's full scan.
/// * `current` — the incoming minibatch that will drive the next update.
/// * `lr` — the virtual-update step size α (Eq. 3).
/// * `candidates` — the interference short-list size |𝒩| (must be ≥
///   `select`; both are clamped to the pool size).
///
/// Returns buffer indices, best first. Empty when the pool is empty.
#[allow(clippy::too_many_arguments)]
pub fn rmir_sample(
    buffer: &ReplayBuffer,
    pool: &[usize],
    current: &Batch,
    backbone: &dyn Backbone,
    store: &ParamStore,
    lr: f32,
    candidates: usize,
    select: usize,
    plans: &mut RmirPlans,
) -> Vec<usize> {
    if pool.is_empty() || select == 0 {
        return Vec::new();
    }
    let select = select.min(pool.len());
    let candidates = candidates.clamp(select, pool.len());

    // Virtual update: θᵛ = θ − α ∇_θ L(f_θ(current)) (Eq. 3). On the plan
    // engine this replays the dedicated (batch-polymorphic) virtual-update
    // plan against the cloned parameters; both engines run the identical
    // recorded graph, so the update is bitwise-identical either way.
    let mut virtual_store = store.clone();
    virtual_store.zero_grads();
    {
        let _sp = urcl_trace::span("virtual_update");
        if plan_enabled() {
            let stale = plans
                .virt
                .as_ref()
                .is_none_or(|p| !p.accepts(&[&current.x, &current.y]));
            if stale {
                plans.virt = Some(compile_virt_plan(backbone, store, current));
            }
            let plan = plans.virt.as_ref().expect("virt plan compiled above");
            let (_loss, grads) = plan.run_training(&virtual_store, &[&current.x, &current.y]);
            virtual_store.accumulate_grads(plan.bindings(), &grads);
        } else {
            let tape = Tape::new();
            let mut sess = Session::new(&tape, &virtual_store);
            let x = sess.input(current.x.clone());
            let y = sess.input(current.y.clone());
            let loss = backbone.forward(&mut sess, x).sub(y).abs().mean_all();
            let grads = tape.backward(loss);
            let binds = sess.into_bindings();
            virtual_store.accumulate_grads(&binds, &grads);
        }
        virtual_store.sgd_step(lr);
    }
    urcl_trace::counter_inc("rmir.virtual_updates");

    // Interference: per-sample loss increase under θᵛ over the pool. One
    // forward-only plan scores both parameter sets.
    let pool_batch = buffer.gather(pool);
    if plan_enabled() {
        let stale = plans
            .score
            .as_ref()
            .is_none_or(|p| !p.accepts(&[&pool_batch.x]));
        if stale {
            plans.score = Some(compile_score_plan(backbone, store, &pool_batch.x));
        }
    }
    let score = if plan_enabled() { plans.score.as_ref() } else { None };
    let loss_before = per_sample_mae(backbone, store, &pool_batch, score);
    let loss_after = per_sample_mae(backbone, &virtual_store, &pool_batch, score);
    let mut by_interference: Vec<(usize, f32)> = loss_before
        .iter()
        .zip(&loss_after)
        .map(|(b, a)| a - b)
        .enumerate()
        .map(|(pi, d)| (pool[pi], d))
        .collect();
    by_interference.sort_by(|a, b| b.1.total_cmp(&a.1));
    by_interference.truncate(candidates);

    // Rank the short-list by Pearson similarity to the current windows
    // (mean over the minibatch).
    let reference = mean_over_batch(&current.x);
    let mut by_similarity: Vec<(usize, f32)> = by_interference
        .into_iter()
        .map(|(idx, _)| {
            let sim = buffer.get(idx).x.pearson(&reference);
            (idx, sim)
        })
        .collect();
    by_similarity.sort_by(|a, b| b.1.total_cmp(&a.1));
    by_similarity.truncate(select);
    let picked: Vec<usize> = by_similarity.into_iter().map(|(idx, _)| idx).collect();
    urcl_trace::counter_add("rmir.selected", picked.len() as u64);
    picked
}

/// Per-sample MAE of a batch under the given parameters: `[B]` values.
/// With a compiled scoring plan the forward pass replays it (bitwise
/// identical to the interpreter); the reduction is off-tape either way.
fn per_sample_mae(
    backbone: &dyn Backbone,
    store: &ParamStore,
    batch: &Batch,
    plan: Option<&ExecPlan>,
) -> Vec<f32> {
    let pred = match plan {
        Some(p) => p.run_forward(store, &[&batch.x]).remove(0), // [B, H, N]
        None => {
            let tape = Tape::new();
            let mut sess = Session::new(&tape, store);
            let x = sess.input(batch.x.clone());
            backbone.forward(&mut sess, x).value() // [B, H, N]
        }
    };
    let diff = pred.sub(&batch.y).map(f32::abs);
    let per: Tensor = diff.sum_axes(&[1, 2], false);
    let denom = (batch.y.len() / batch.len()) as f32;
    per.data().iter().map(|v| v / denom).collect()
}

/// Mean of a `[B, ...]` tensor over the batch axis, keeping one sample's
/// shape.
fn mean_over_batch(x: &Tensor) -> Tensor {
    let b = x.shape()[0] as f32;
    let rest = x.shape()[1..].to_vec();
    x.sum_axes(&[0], false).scale(1.0 / b).reshape(&rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_graph::random_geometric;
    use urcl_models::{Backbone, GraphWaveNet, GwnConfig};
    use urcl_stdata::{stack_samples, Sample};
    use urcl_tensor::{ParamStore, Rng};

    fn setup() -> (ParamStore, GraphWaveNet, ReplayBuffer, Batch, Rng) {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(11);
        let net = random_geometric(5, 0.5, &mut rng);
        let mut cfg = GwnConfig::small(5, 1, 6, 1);
        cfg.layers = 2;
        let model = GraphWaveNet::new(&mut store, &mut rng, &net, cfg);
        let mut buffer = ReplayBuffer::new(16);
        for i in 0..10 {
            buffer.push(Sample {
                x: rng.uniform_tensor(&[6, 5, 1], 0.0, 1.0).map(|v| v + i as f32 * 0.01),
                y: rng.uniform_tensor(&[1, 5], 0.0, 1.0),
            });
        }
        let current = stack_samples(&[
            Sample {
                x: rng.uniform_tensor(&[6, 5, 1], 0.0, 1.0),
                y: rng.uniform_tensor(&[1, 5], 0.0, 1.0),
            },
            Sample {
                x: rng.uniform_tensor(&[6, 5, 1], 0.0, 1.0),
                y: rng.uniform_tensor(&[1, 5], 0.0, 1.0),
            },
        ]);
        (store, model, buffer, current, rng)
    }

    fn full_pool(buffer: &ReplayBuffer) -> Vec<usize> {
        (0..buffer.len()).collect()
    }

    #[test]
    fn returns_requested_count_of_valid_indices() {
        let (store, model, buffer, current, _) = setup();
        let pool = full_pool(&buffer);
        let picked = rmir_sample(
            &buffer, &pool, &current, &model, &store, 0.05, 6, 3,
            &mut RmirPlans::default(),
        );
        assert_eq!(picked.len(), 3);
        assert!(picked.iter().all(|&i| i < buffer.len()));
        // Distinct indices.
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn empty_pool_returns_nothing() {
        let (store, model, buffer, current, _) = setup();
        assert!(rmir_sample(
            &buffer, &[], &current, &model, &store, 0.05, 4, 2,
            &mut RmirPlans::default(),
        ).is_empty());
    }

    #[test]
    fn select_clamped_to_pool_len() {
        let (store, model, buffer, current, _) = setup();
        let pool = full_pool(&buffer);
        let picked = rmir_sample(
            &buffer, &pool, &current, &model, &store, 0.05, 99, 99,
            &mut RmirPlans::default(),
        );
        assert_eq!(picked.len(), buffer.len());
    }

    #[test]
    fn restricted_pool_only_returns_pool_members() {
        let (store, model, buffer, current, _) = setup();
        let pool = vec![1usize, 4, 7];
        let picked = rmir_sample(
            &buffer, &pool, &current, &model, &store, 0.05, 3, 2,
            &mut RmirPlans::default(),
        );
        assert_eq!(picked.len(), 2);
        assert!(picked.iter().all(|i| pool.contains(i)));
    }

    #[test]
    fn per_sample_losses_match_batch_mean() {
        let (store, model, buffer, _, _) = setup();
        let all = buffer.as_batch().unwrap();
        let per = per_sample_mae(&model, &store, &all, None);
        assert_eq!(per.len(), buffer.len());
        // Mean of per-sample MAEs equals the batch MAE.
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(all.x.clone());
        let pred = model.forward(&mut sess, x).value();
        let batch_mae = pred.sub(&all.y).map(f32::abs).mean_all();
        let per_mean: f32 = per.iter().sum::<f32>() / per.len() as f32;
        assert!((batch_mae - per_mean).abs() < 1e-5);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let (store, model, buffer, current, _) = setup();
        let pool = full_pool(&buffer);
        let a = rmir_sample(
            &buffer, &pool, &current, &model, &store, 0.05, 6, 3,
            &mut RmirPlans::default(),
        );
        let b = rmir_sample(
            &buffer, &pool, &current, &model, &store, 0.05, 6, 3,
            &mut RmirPlans::default(),
        );
        assert_eq!(a, b);
    }
}
