//! The STSimSiam network (Section IV-C2): two parameter-shared STEncoders
//! plus a projection MLP head, trained to maximise mutual information
//! between two augmented views via the symmetric GraphCL loss
//! (Eq. 12–16) with a stop-gradient on the target branch (Eq. 13).

use crate::augment::AugmentedView;
use urcl_graph::SupportSet;
use urcl_models::Backbone;
use urcl_nn::linear::{Activation, Mlp};
use urcl_tensor::autodiff::{Session, Var};
use urcl_tensor::{ParamStore, Rng, Tensor};

/// STSimSiam: projector head + GraphCL loss over a shared encoder.
///
/// The two STEncoders of Fig. 1 share parameters, so a single
/// [`Backbone`] reference supplies both branches; the projector `h(·)` is
/// the only extra trainable component.
pub struct StSimSiam {
    projector: Mlp,
    tau: f32,
}

impl StSimSiam {
    /// Builds the projector `h : F → F` (hidden width `proj_hidden`) and
    /// stores the GraphCL temperature τ.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        latent: usize,
        proj_hidden: usize,
        tau: f32,
    ) -> Self {
        assert!(tau > 0.0, "temperature must be positive");
        Self {
            projector: Mlp::new(
                store,
                rng,
                "simsiam.proj",
                &[latent, proj_hidden, latent],
                Activation::Relu,
            ),
            tau,
        }
    }

    /// Temperature τ of Eq. 14.
    pub fn temperature(&self) -> f32 {
        self.tau
    }

    /// Pools per-node latents `[B, N, F]` to per-window embeddings
    /// `[B, F]` (mean over nodes), the representation the contrastive
    /// loss compares.
    fn pool<'t>(z: Var<'t>) -> Var<'t> {
        z.mean_axes(&[1], false)
    }

    /// Computes the symmetric GraphCL loss (Eq. 15–16) for a pair of
    /// augmented views encoded by the shared backbone.
    ///
    /// Returns a scalar variable. Batches of size 1 have no negatives, so
    /// the loss degenerates to the (negative) positive-pair similarity.
    pub fn loss<'t>(
        &self,
        sess: &mut Session<'t, '_>,
        backbone: &dyn Backbone,
        view1: &AugmentedView,
        view2: &AugmentedView,
    ) -> Var<'t> {
        let x1 = sess.input(view1.x.clone());
        let x2 = sess.input(view2.x.clone());
        self.loss_from_vars(
            sess,
            backbone,
            x1,
            view1.supports.as_ref(),
            x2,
            view2.supports.as_ref(),
        )
    }

    /// The batch-size-dependent contrastive constants: `(eye, off_mask)`
    /// for `s` samples. Exposed so the trainer can bind the same tensors
    /// to a compiled plan's promoted `ssl.eye` / `ssl.off_mask` input
    /// slots that this module registers at record time — both sides call
    /// this one helper, keeping record and replay bitwise-identical.
    pub fn contrastive_masks(s: usize) -> (Tensor, Tensor) {
        let eye = Tensor::eye(s);
        let off = eye.map(|v| 1.0 - v);
        (eye, off)
    }

    /// [`Self::loss`] over already-registered view variables. Exposing the
    /// view inputs lets the trainer record this graph once and compile it
    /// into an `ExecPlan` that substitutes fresh view tensors per replay.
    /// Everything that varies per augmentation draw is registered as a
    /// named input slot: the view encodes run under the `ssl.v1` / `ssl.v2`
    /// scopes (so their per-layer `support` slots become `ssl.v1.support`,
    /// …), and the batch-size constants register as `ssl.eye` /
    /// `ssl.off_mask`. The trainer promotes these slots to plan inputs and
    /// rebinds fresh supports and masks at replay, so one compiled plan
    /// serves every draw instead of falling back to the interpreter.
    pub fn loss_from_vars<'t>(
        &self,
        sess: &mut Session<'t, '_>,
        backbone: &dyn Backbone,
        x1: Var<'t>,
        supports1: Option<&SupportSet>,
        x2: Var<'t>,
        supports2: Option<&SupportSet>,
    ) -> Var<'t> {
        sess.push_scope("ssl.v1");
        let z1 = Self::pool(backbone.encode_perturbed(sess, x1, supports1));
        sess.pop_scope();
        sess.push_scope("ssl.v2");
        let z2 = Self::pool(backbone.encode_perturbed(sess, x2, supports2));
        sess.pop_scope();
        let p1 = self.projector.forward(sess, z1);
        let p2 = self.projector.forward(sess, z2);

        let s = z1.shape()[0];
        // Row-normalised embeddings; targets are stop-gradient (Eq. 13).
        let p1n = p1.l2_normalize(1);
        let p2n = p2.l2_normalize(1);
        let z1t = z1.detach().l2_normalize(1);
        let z2t = z2.detach().l2_normalize(1);

        // Pairwise cosine similarities, symmetrised (Eq. 15).
        let sims1 = p1n.matmul(z2t.transpose(0, 1));
        let sims2 = p2n.matmul(z1t.transpose(0, 1));
        let logits = sims1.add(sims2).scale(0.5 / self.tau); // [S, S]

        let (eye_t, off_t) = Self::contrastive_masks(s);
        let eye = sess.slot_input("ssl.eye", eye_t);
        let diag = logits.mul(eye).sum_axes(&[1], false); // [S]
        if s == 1 {
            // No negatives: minimise −similarity directly (plain SimSiam).
            return diag.neg().mean_all();
        }
        let off_mask = sess.slot_input("ssl.off_mask", off_t);
        let denom = logits.exp().mul(off_mask).sum_axes(&[1], false); // [S]
        denom.ln().sub(diag).mean_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_graph::random_geometric;
    use urcl_models::{GraphWaveNet, GwnConfig};
    use urcl_tensor::autodiff::Tape;
    use urcl_tensor::{Adam, Optimizer};

    fn setup() -> (ParamStore, GraphWaveNet, StSimSiam, Rng) {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(7);
        let net = random_geometric(6, 0.4, &mut rng);
        let mut cfg = GwnConfig::small(6, 2, 8, 1);
        cfg.layers = 2;
        let model = GraphWaveNet::new(&mut store, &mut rng, &net, cfg);
        let sim = StSimSiam::new(&mut store, &mut rng, 32, 32, 0.5);
        (store, model, sim, rng)
    }

    fn views(rng: &mut Rng) -> (AugmentedView, AugmentedView) {
        let x = rng.uniform_tensor(&[4, 8, 6, 2], 0.0, 1.0);
        (
            AugmentedView {
                x: x.clone(),
                supports: None,
            },
            AugmentedView {
                x: x.map(|v| (v + 0.05).min(1.0)),
                supports: None,
            },
        )
    }

    #[test]
    fn loss_is_finite_scalar() {
        let (store, model, sim, mut rng) = setup();
        let (v1, v2) = views(&mut rng);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let loss = sim.loss(&mut sess, &model, &v1, &v2);
        let v = loss.value();
        assert_eq!(v.len(), 1);
        assert!(v.item().is_finite());
    }

    #[test]
    fn batch_of_one_degenerates_to_negative_similarity() {
        let (store, model, sim, mut rng) = setup();
        let x = rng.uniform_tensor(&[1, 8, 6, 2], 0.0, 1.0);
        let v1 = AugmentedView {
            x: x.clone(),
            supports: None,
        };
        let v2 = AugmentedView { x, supports: None };
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let loss = sim.loss(&mut sess, &model, &v1, &v2).value().item();
        // Degenerate form is −(symmetric cosine)/τ, bounded by ±1/τ.
        assert!(loss.is_finite());
        assert!(loss.abs() <= 1.0 / sim.temperature() + 1e-4, "loss {loss}");
    }

    #[test]
    fn training_reduces_ssl_loss() {
        let (mut store, model, sim, mut rng) = setup();
        let (v1, v2) = views(&mut rng);
        let mut opt = Adam::new(0.005);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..25 {
            store.zero_grads();
            let tape = Tape::new();
            let mut sess = Session::new(&tape, &store);
            let loss = sim.loss(&mut sess, &model, &v1, &v2);
            last = loss.value().item();
            first.get_or_insert(last);
            let grads = tape.backward(loss);
            let binds = sess.into_bindings();
            store.accumulate_grads(&binds, &grads);
            store.clip_grad_norm(5.0);
            opt.step(&mut store);
        }
        assert!(
            last < first.unwrap(),
            "ssl loss did not improve: {first:?} -> {last}"
        );
    }

    #[test]
    fn stop_gradient_blocks_target_branch() {
        // The projector must receive gradients; the loss must still be
        // differentiable despite the detached targets.
        let (mut store, model, sim, mut rng) = setup();
        let (v1, v2) = views(&mut rng);
        store.zero_grads();
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let loss = sim.loss(&mut sess, &model, &v1, &v2);
        let grads = tape.backward(loss);
        let binds = sess.into_bindings();
        store.accumulate_grads(&binds, &grads);
        let mut proj_grad = 0.0;
        for id in store.ids() {
            if store.name(id).starts_with("simsiam.proj") {
                proj_grad += store.grad(id).norm();
            }
        }
        assert!(proj_grad > 0.0, "projector received no gradient");
    }
}
