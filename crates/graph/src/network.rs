//! The sensor network of Definition 1: a weighted directed graph whose
//! nodes are sensors and whose edge weights encode spatial proximity
//! (Eq. 20: weight = 1 / distance).

use urcl_tensor::Tensor;

/// A sensor network `G = (V, E)` with dense weighted adjacency.
///
/// `adj[i * n + j] > 0` means an edge from sensor `i` to sensor `j` with
/// that weight. Sensors carry planar coordinates so that generators and
/// augmentations can reason about geography.
#[derive(Clone, Debug)]
pub struct SensorNetwork {
    n: usize,
    coords: Vec<(f32, f32)>,
    adj: Tensor,
}

impl SensorNetwork {
    /// Builds a network from coordinates and a dense adjacency tensor of
    /// shape `[n, n]`. Panics on shape mismatch or negative weights.
    pub fn new(coords: Vec<(f32, f32)>, adj: Tensor) -> Self {
        let n = coords.len();
        assert_eq!(adj.shape(), &[n, n], "adjacency must be [n, n]");
        assert!(
            adj.data().iter().all(|&w| w >= 0.0),
            "edge weights must be non-negative"
        );
        Self { n, coords, adj }
    }

    /// Builds a network from an edge list with explicit weights. Node
    /// coordinates default to a unit line layout when not meaningful.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f32)]) -> Self {
        let mut adj = Tensor::zeros(&[n, n]);
        for &(i, j, w) in edges {
            assert!(i < n && j < n, "edge ({i},{j}) out of range");
            assert!(w >= 0.0, "negative edge weight");
            adj.data_mut()[i * n + j] = w;
        }
        let coords = (0..n).map(|i| (i as f32, 0.0)).collect();
        Self::new(coords, adj)
    }

    /// Number of sensors.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges with positive weight.
    pub fn num_edges(&self) -> usize {
        self.adj.data().iter().filter(|&&w| w > 0.0).count()
    }

    /// Sensor coordinates.
    pub fn coords(&self) -> &[(f32, f32)] {
        &self.coords
    }

    /// The dense weighted adjacency matrix `[n, n]`.
    pub fn adjacency(&self) -> &Tensor {
        &self.adj
    }

    /// Weight of the edge `i -> j` (0 when absent).
    pub fn weight(&self, i: usize, j: usize) -> f32 {
        self.adj.data()[i * self.n + j]
    }

    /// True when an edge `i -> j` exists.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.weight(i, j) > 0.0
    }

    /// Out-neighbours of node `i`.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        (0..self.n).filter(|&j| self.has_edge(i, j)).collect()
    }

    /// Out-degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.neighbors(i).len()
    }

    /// Euclidean distance between two sensors.
    pub fn distance(&self, i: usize, j: usize) -> f32 {
        let (xi, yi) = self.coords[i];
        let (xj, yj) = self.coords[j];
        ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
    }

    /// Returns a copy with a different adjacency (used by spatial
    /// augmentations which perturb edges but keep node identity).
    pub fn with_adjacency(&self, adj: Tensor) -> Self {
        Self::new(self.coords.clone(), adj)
    }

    /// Restriction of the network to a node subset (the SubGraph
    /// augmentation). Node order follows `nodes`.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> Self {
        let coords = nodes.iter().map(|&i| self.coords[i]).collect();
        let m = nodes.len();
        let mut adj = Tensor::zeros(&[m, m]);
        for (a, &i) in nodes.iter().enumerate() {
            for (b, &j) in nodes.iter().enumerate() {
                adj.data_mut()[a * m + b] = self.weight(i, j);
            }
        }
        Self::new(coords, adj)
    }

    /// Whether the adjacency is symmetric (undirected network).
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self.weight(i, j) - self.weight(j, i)).abs() > 1e-6 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> SensorNetwork {
        SensorNetwork::from_edges(
            3,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 0.5), (2, 1, 0.5)],
        )
    }

    #[test]
    fn edge_queries() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.weight(1, 2), 0.5);
        assert_eq!(g.neighbors(1), vec![0, 2]);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn symmetric_detection() {
        let g = triangle();
        assert!(g.is_symmetric());
        let d = SensorNetwork::from_edges(2, &[(0, 1, 1.0)]);
        assert!(!d.is_symmetric());
    }

    #[test]
    fn induced_subgraph_keeps_weights() {
        let g = triangle();
        let s = g.induced_subgraph(&[1, 2]);
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.weight(0, 1), 0.5); // old (1,2)
        assert_eq!(s.weight(1, 0), 0.5);
        assert_eq!(s.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "negative edge weight")]
    fn negative_weight_rejected() {
        let _ = SensorNetwork::from_edges(2, &[(0, 1, -1.0)]);
    }

    #[test]
    fn distance_uses_coords() {
        let g = SensorNetwork::new(
            vec![(0.0, 0.0), (3.0, 4.0)],
            Tensor::zeros(&[2, 2]),
        );
        assert!((g.distance(0, 1) - 5.0).abs() < 1e-6);
    }
}
