//! Diffusion transition matrices and Chebyshev polynomials.
//!
//! Implements the normalisations behind the paper's graph-convolution
//! layers: Ã = A + Iₙ with row normalisation (Eq. 19/21), the forward and
//! backward transition matrices P^f = Ã / rowsum(Ã) and
//! P^b = Ãᵀ / rowsum(Ãᵀ) for directed diffusion (Eq. 22), their power
//! series P_k, and the scaled Laplacian / Chebyshev basis used by the
//! STGCN baseline.

use crate::network::SensorNetwork;
use urcl_tensor::Tensor;

/// Precomputed diffusion supports for a sensor network: the matrices the
/// diffusion GCN multiplies node features with (Eq. 24 without the
/// adaptive term, which is learned).
#[derive(Clone, Debug)]
pub struct SupportSet {
    /// `P_k` for the forward transition matrix, k = 1..=K (k=0 identity is
    /// implicit in the layer).
    pub forward: Vec<Tensor>,
    /// `P_k` for the backward transition matrix; empty for undirected
    /// graphs where it would duplicate `forward`.
    pub backward: Vec<Tensor>,
}

impl SupportSet {
    /// Builds K-step diffusion supports from a network.
    pub fn diffusion(net: &SensorNetwork, k: usize) -> Self {
        let pf = transition_matrix(net.adjacency());
        let forward = power_series(&pf, k);
        let backward = if net.is_symmetric() {
            Vec::new()
        } else {
            let at = net.adjacency().transpose(0, 1);
            let pb = transition_matrix(&at);
            power_series(&pb, k)
        };
        Self { forward, backward }
    }

    /// All support matrices in a flat list (forward then backward).
    pub fn all(&self) -> Vec<&Tensor> {
        self.forward.iter().chain(self.backward.iter()).collect()
    }

    /// Number of supports.
    pub fn len(&self) -> usize {
        self.forward.len() + self.backward.len()
    }

    /// True when no supports exist (edgeless graph with k = 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Row-normalised transition matrix of Ã = A + Iₙ. Rows with zero sum
/// (isolated nodes before the self-loop, impossible after) normalise to
/// the self-loop alone.
pub fn transition_matrix(adj: &Tensor) -> Tensor {
    let n = adj.shape()[0];
    assert_eq!(adj.shape(), &[n, n], "adjacency must be square");
    let mut t = adj.clone();
    // Self connections.
    for i in 0..n {
        t.data_mut()[i * n + i] += 1.0;
    }
    // Row normalise.
    for i in 0..n {
        let row_sum: f32 = t.data()[i * n..(i + 1) * n].iter().sum();
        if row_sum > 0.0 {
            for j in 0..n {
                t.data_mut()[i * n + j] /= row_sum;
            }
        }
    }
    t
}

/// `[P, P², …, P^k]`.
pub fn power_series(p: &Tensor, k: usize) -> Vec<Tensor> {
    let mut out = Vec::with_capacity(k);
    let mut cur = p.clone();
    for _ in 0..k {
        out.push(cur.clone());
        cur = cur.matmul(p);
    }
    out
}

/// Scaled Laplacian `2 L / λ_max − I` with `L = I − D^(−1/2) A D^(−1/2)`,
/// the ChebNet input used by STGCN. `λ_max` is approximated by 2 (standard
/// practice for normalized Laplacians, whose spectrum lies in [0, 2]).
pub fn scaled_laplacian(adj: &Tensor) -> Tensor {
    let n = adj.shape()[0];
    // Symmetrise first: ChebNet assumes undirected graphs.
    let sym = adj.zip(&adj.transpose(0, 1), |a, b| 0.5 * (a + b));
    let deg: Vec<f32> = (0..n)
        .map(|i| sym.data()[i * n..(i + 1) * n].iter().sum())
        .collect();
    let mut lap = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            let a = sym.data()[i * n + j];
            let norm = if deg[i] > 0.0 && deg[j] > 0.0 {
                a / (deg[i].sqrt() * deg[j].sqrt())
            } else {
                0.0
            };
            let l = if i == j { 1.0 - norm } else { -norm };
            // 2L/λ_max − I with λ_max ≈ 2  ⇒  L − I.
            lap.data_mut()[i * n + j] = l - if i == j { 1.0 } else { 0.0 };
        }
    }
    lap
}

/// Chebyshev polynomial basis `T_0(L̃) … T_{k−1}(L̃)` with the recurrence
/// `T_m = 2 L̃ T_{m−1} − T_{m−2}`.
pub fn cheb_polynomials(scaled_lap: &Tensor, k: usize) -> Vec<Tensor> {
    let n = scaled_lap.shape()[0];
    let mut out: Vec<Tensor> = Vec::with_capacity(k);
    if k == 0 {
        return out;
    }
    out.push(Tensor::eye(n));
    if k == 1 {
        return out;
    }
    out.push(scaled_lap.clone());
    for m in 2..k {
        let t = scaled_lap
            .matmul(&out[m - 1])
            .scale(2.0)
            .sub(&out[m - 2]);
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SensorNetwork;

    fn path3() -> SensorNetwork {
        SensorNetwork::from_edges(3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
    }

    #[test]
    fn transition_rows_sum_to_one() {
        let g = path3();
        let p = transition_matrix(g.adjacency());
        for i in 0..3 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        }
    }

    #[test]
    fn transition_handles_isolated_node() {
        let g = SensorNetwork::from_edges(2, &[]);
        let p = transition_matrix(g.adjacency());
        // Self-loop only: identity.
        assert_eq!(p.data(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn power_series_lengths_and_stochasticity() {
        let g = path3();
        let p = transition_matrix(g.adjacency());
        let ps = power_series(&p, 3);
        assert_eq!(ps.len(), 3);
        // Powers of a row-stochastic matrix stay row-stochastic.
        for (k, m) in ps.iter().enumerate() {
            for i in 0..3 {
                let s: f32 = m.data()[i * 3..(i + 1) * 3].iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "P^{} row {i} sums to {s}", k + 1);
            }
        }
    }

    #[test]
    fn diffusion_supports_undirected_skips_backward() {
        let g = path3();
        let s = SupportSet::diffusion(&g, 2);
        assert_eq!(s.forward.len(), 2);
        assert!(s.backward.is_empty());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn diffusion_supports_directed_has_backward() {
        let g = SensorNetwork::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let s = SupportSet::diffusion(&g, 2);
        assert_eq!(s.forward.len(), 2);
        assert_eq!(s.backward.len(), 2);
        assert_eq!(s.all().len(), 4);
    }

    #[test]
    fn scaled_laplacian_symmetric_and_bounded() {
        let g = path3();
        let l = scaled_laplacian(g.adjacency());
        // Symmetric.
        for i in 0..3 {
            for j in 0..3 {
                let a = l.data()[i * 3 + j];
                let b = l.data()[j * 3 + i];
                assert!((a - b).abs() < 1e-6);
            }
        }
        // Entries of L̃ = L − I lie in [−2, 1] for normalized Laplacians.
        assert!(l.data().iter().all(|&v| (-2.0..=1.0).contains(&v)));
    }

    #[test]
    fn cheb_recurrence_matches_definition() {
        let g = path3();
        let l = scaled_laplacian(g.adjacency());
        let t = cheb_polynomials(&l, 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], Tensor::eye(3));
        assert_eq!(t[1], l);
        let expect = l.matmul(&l).scale(2.0).sub(&Tensor::eye(3));
        let diff: f32 = t[2]
            .data()
            .iter()
            .zip(expect.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff < 1e-5);
    }
}
