//! # urcl-graph
//!
//! Sensor networks for spatio-temporal prediction: the weighted spatial
//! graph of Definition 1 in the URCL paper, the diffusion transition
//! matrices used by the graph-convolution layers (Eq. 19–24), and
//! generators for synthetic road-sensor topologies.
//!
//! Adjacency is stored densely as an `N × N` [`urcl_tensor::Tensor`]
//! because the paper's graphs are small (hundreds of sensors) and every
//! consumer — graph convolutions, augmentations — wants dense matrices
//! anyway.

pub mod generate;
pub mod network;
pub mod transition;
pub mod walk;

pub use generate::random_geometric;
pub use network::SensorNetwork;
pub use transition::{cheb_polynomials, power_series, scaled_laplacian, transition_matrix, SupportSet};
pub use walk::{distant_pairs, hop_distances, random_walk_subgraph};
