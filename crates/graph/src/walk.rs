//! Graph traversal utilities used by the spatio-temporal augmentations:
//! random-walk subgraph sampling (SubGraph), hop distances and distant
//! node-pair selection (AddEdge).

use crate::network::SensorNetwork;
use urcl_tensor::Rng;

/// Samples a connected node subset by random walk with restart, the
/// SubGraph (SG) augmentation of Section IV-C1. The walk starts at
/// `start`, follows out-edges uniformly, and restarts at `start` with
/// probability 0.15; it runs until `target_size` distinct nodes are seen
/// or a step budget is exhausted. Returns sorted node ids.
pub fn random_walk_subgraph(
    net: &SensorNetwork,
    start: usize,
    target_size: usize,
    rng: &mut Rng,
) -> Vec<usize> {
    assert!(start < net.num_nodes(), "start node out of range");
    let target = target_size.clamp(1, net.num_nodes());
    let mut visited = vec![false; net.num_nodes()];
    let mut nodes = Vec::with_capacity(target);
    let push = |v: usize, visited: &mut Vec<bool>, nodes: &mut Vec<usize>| {
        if !visited[v] {
            visited[v] = true;
            nodes.push(v);
        }
    };
    push(start, &mut visited, &mut nodes);
    let mut cur = start;
    let budget = 50 * net.num_nodes().max(1);
    for _ in 0..budget {
        if nodes.len() >= target {
            break;
        }
        if rng.bernoulli(0.15) {
            cur = start;
            continue;
        }
        let nbrs = net.neighbors(cur);
        if nbrs.is_empty() {
            // Dead end: teleport to a random unvisited node to guarantee
            // progress on disconnected graphs.
            cur = rng.below(net.num_nodes());
        } else {
            cur = nbrs[rng.below(nbrs.len())];
        }
        push(cur, &mut visited, &mut nodes);
    }
    // Top up from unvisited nodes if the walk stalled (disconnected graph).
    if nodes.len() < target {
        for v in 0..net.num_nodes() {
            if nodes.len() >= target {
                break;
            }
            push(v, &mut visited, &mut nodes);
        }
    }
    nodes.sort_unstable();
    nodes
}

/// BFS hop distance from `source` to every node, ignoring weights.
/// Unreachable nodes get `usize::MAX`.
pub fn hop_distances(net: &SensorNetwork, source: usize) -> Vec<usize> {
    let n = net.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in net.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All ordered node pairs `(i, j)` at hop distance `> min_hops` (including
/// mutually unreachable pairs), the candidates for the AddEdge (AE)
/// augmentation which links distant-but-similar sensors.
pub fn distant_pairs(net: &SensorNetwork, min_hops: usize) -> Vec<(usize, usize)> {
    let n = net.num_nodes();
    let mut pairs = Vec::new();
    for i in 0..n {
        let dist = hop_distances(net, i);
        for (j, &d) in dist.iter().enumerate() {
            if j != i && (d == usize::MAX || d > min_hops) {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2-3-4 path.
    fn path5() -> SensorNetwork {
        let mut e = Vec::new();
        for i in 0..4 {
            e.push((i, i + 1, 1.0));
            e.push((i + 1, i, 1.0));
        }
        SensorNetwork::from_edges(5, &e)
    }

    #[test]
    fn hop_distances_on_path() {
        let g = path5();
        assert_eq!(hop_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(hop_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn hop_distance_unreachable() {
        let g = SensorNetwork::from_edges(3, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let d = hop_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn distant_pairs_exceed_min_hops() {
        let g = path5();
        let pairs = distant_pairs(&g, 3);
        // Only (0,4) and (4,0) are >3 hops apart on a 5-path.
        assert_eq!(pairs, vec![(0, 4), (4, 0)]);
    }

    #[test]
    fn subgraph_size_and_membership() {
        let g = path5();
        let mut rng = Rng::seed_from_u64(1);
        let nodes = random_walk_subgraph(&g, 2, 3, &mut rng);
        assert_eq!(nodes.len(), 3);
        assert!(nodes.contains(&2));
        assert!(nodes.windows(2).all(|w| w[0] < w[1]), "sorted output");
        assert!(nodes.iter().all(|&v| v < 5));
    }

    #[test]
    fn subgraph_handles_disconnected() {
        let g = SensorNetwork::from_edges(4, &[]);
        let mut rng = Rng::seed_from_u64(2);
        let nodes = random_walk_subgraph(&g, 0, 3, &mut rng);
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    fn subgraph_target_clamped() {
        let g = path5();
        let mut rng = Rng::seed_from_u64(3);
        let nodes = random_walk_subgraph(&g, 0, 100, &mut rng);
        assert_eq!(nodes.len(), 5);
    }
}
