//! Synthetic sensor-network generators.
//!
//! Real deployments (METR-LA, PEMS) place sensors along roads, so nearby
//! sensors are densely connected with weights decaying in distance
//! (Eq. 20: w = 1/dist). The random-geometric generator reproduces that
//! structure: uniform points in the unit square, edges between points
//! within a radius, weight 1/dist, and a connectivity fix-up so the graph
//! has no isolated islands (real road networks are connected).

use crate::network::SensorNetwork;
use urcl_tensor::{Rng, Tensor};

/// Generates a connected random-geometric sensor network.
///
/// * `n` — number of sensors.
/// * `radius` — connection radius in the unit square; `0.25` with
///   `n = 30` gives densities similar (relative to size) to the PEMS
///   graphs.
/// * Edge weights are `1 / distance` (Eq. 20), symmetric.
pub fn random_geometric(n: usize, radius: f32, rng: &mut Rng) -> SensorNetwork {
    assert!(n > 0, "need at least one sensor");
    let coords: Vec<(f32, f32)> = (0..n)
        .map(|_| (rng.uniform(), rng.uniform()))
        .collect();
    let mut adj = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(coords[i], coords[j]);
            if d <= radius && d > 0.0 {
                let w = 1.0 / d;
                adj.data_mut()[i * n + j] = w;
                adj.data_mut()[j * n + i] = w;
            }
        }
    }
    let mut net = SensorNetwork::new(coords, adj);
    connect_components(&mut net);
    net
}

fn dist(a: (f32, f32), b: (f32, f32)) -> f32 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Links each disconnected component to the main one via the closest node
/// pair, mimicking how arterial roads join neighbourhoods.
fn connect_components(net: &mut SensorNetwork) {
    loop {
        let comp = components(net);
        let ncomp = *comp.iter().max().unwrap() + 1;
        if ncomp == 1 {
            return;
        }
        // Find the closest pair across the (0, other) component boundary.
        let n = net.num_nodes();
        let mut best: Option<(usize, usize, f32)> = None;
        for i in 0..n {
            if comp[i] != 0 {
                continue;
            }
            for (j, &cj) in comp.iter().enumerate() {
                if cj == 0 {
                    continue;
                }
                let d = net.distance(i, j).max(1e-6);
                if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, d) = best.expect("multiple components imply a crossing pair");
        let mut adj = net.adjacency().clone();
        let w = 1.0 / d;
        adj.data_mut()[i * n + j] = w;
        adj.data_mut()[j * n + i] = w;
        *net = net.with_adjacency(adj);
    }
}

/// Connected-component labels via union-free BFS flooding.
fn components(net: &SensorNetwork) -> Vec<usize> {
    let n = net.num_nodes();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([s]);
        label[s] = next;
        while let Some(u) = queue.pop_front() {
            for v in net.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_network_is_connected() {
        for seed in 0..5 {
            let mut rng = Rng::seed_from_u64(seed);
            let net = random_geometric(25, 0.2, &mut rng);
            let comp = components(&net);
            assert!(
                comp.iter().all(|&c| c == 0),
                "seed {seed} produced a disconnected network"
            );
        }
    }

    #[test]
    fn generated_network_is_symmetric_with_inverse_distance_weights() {
        let mut rng = Rng::seed_from_u64(7);
        let net = random_geometric(20, 0.3, &mut rng);
        assert!(net.is_symmetric());
        // Every positive weight is 1/dist for its endpoint pair.
        for i in 0..20 {
            for j in 0..20 {
                let w = net.weight(i, j);
                if w > 0.0 {
                    let expect = 1.0 / net.distance(i, j).max(1e-6);
                    assert!(
                        (w - expect).abs() / expect < 1e-4,
                        "weight({i},{j}) = {w}, expected {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = random_geometric(15, 0.25, &mut Rng::seed_from_u64(42));
        let b = random_geometric(15, 0.25, &mut Rng::seed_from_u64(42));
        assert_eq!(a.adjacency(), b.adjacency());
        assert_eq!(a.coords(), b.coords());
    }

    #[test]
    fn single_node_ok() {
        let net = random_geometric(1, 0.25, &mut Rng::seed_from_u64(1));
        assert_eq!(net.num_nodes(), 1);
        assert_eq!(net.num_edges(), 0);
    }
}
