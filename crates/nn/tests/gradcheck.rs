//! Finite-difference gradient checks for every `urcl-nn` layer.
//!
//! `urcl_tensor::gradcheck` already validates the raw autodiff ops; these
//! tests validate the *composed* layer graphs — input gradients via
//! [`check_scalar`] and parameter gradients via a store-level
//! finite-difference probe — so a wiring mistake inside a layer (wrong
//! transpose, dropped bias, bad reshape) fails here even if every
//! primitive op is correct.
//!
//! Inputs are drawn from the in-tree RNG with fixed seeds and kept away
//! from non-smooth points (ReLU kinks), matching the tolerances used by
//! the tensor crate's own checks.

use urcl_graph::{cheb_polynomials, random_geometric, scaled_laplacian, SupportSet};
use urcl_nn::linear::Activation;
use urcl_nn::{
    AdaptiveAdjacency, Attention, ChebGcn, Conv1dLayer, DcGruCell, DiffusionGcn, GatedTcn,
    GruCell, Linear, Mlp,
};
use urcl_tensor::autodiff::{Session, Tape, Var};
use urcl_tensor::gradcheck::check_scalar;
use urcl_tensor::{ParamId, ParamStore, Rng, Tensor};

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// At most this many coordinates are probed per parameter tensor; larger
/// tensors are stride-sampled. Two rebuilds per coordinate keeps runtime
/// bounded while still covering every row/column pattern.
const MAX_COORDS: usize = 24;

/// Finite-difference check of d(loss)/d(param `pname`) against the tape
/// gradient. `f` rebuilds the loss graph from scratch on each call and
/// returns the scalar loss plus the session's parameter bindings.
fn check_param<F>(store: &mut ParamStore, pname: &str, eps: f32, tol: f32, f: F)
where
    F: for<'t> Fn(&'t Tape, &ParamStore) -> (Var<'t>, Vec<(ParamId, usize)>),
{
    let id = store
        .ids()
        .find(|&i| store.name(i) == pname)
        .unwrap_or_else(|| panic!("no parameter named {pname}"));

    store.zero_grads();
    let analytic = {
        let tape = Tape::new();
        let (loss, binds) = f(&tape, store);
        let grads = tape.backward(loss);
        store.accumulate_grads(&binds, &grads);
        store.grad(id).clone()
    };

    let eval = |store: &ParamStore| -> f32 {
        let tape = Tape::new();
        let (loss, _) = f(&tape, store);
        loss.value().item()
    };

    let n = store.value(id).len();
    let stride = n.div_ceil(MAX_COORDS).max(1);
    for i in (0..n).step_by(stride) {
        let orig = store.value(id).data()[i];
        store.value_mut(id).data_mut()[i] = orig + eps;
        let plus = eval(store);
        store.value_mut(id).data_mut()[i] = orig - eps;
        let minus = eval(store);
        store.value_mut(id).data_mut()[i] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        let a = analytic.data()[i];
        let abs = (a - numeric).abs();
        let rel = abs / numeric.abs().max(1.0);
        assert!(
            abs < tol && rel < tol,
            "param {pname}[{i}]: analytic {a} vs numeric {numeric} (abs {abs}, rel {rel})"
        );
    }
}

fn rand_t(shape: &[usize], seed: u64) -> Tensor {
    Rng::seed_from_u64(seed).uniform_tensor(shape, -1.0, 1.0)
}

// --- linear ---

#[test]
fn linear_input_and_param_grads() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(1);
    let lin = Linear::new(&mut store, &mut rng, "lin", 4, 3, true);
    let x = rand_t(&[2, 5, 4], 2);
    {
        let store = &store;
        let lin = &lin;
        check_scalar(&x, EPS, |t, v| {
            let mut sess = Session::new(t, store);
            lin.forward(&mut sess, v).powf(2.0).sum_all()
        })
        .assert_close(TOL);
    }
    for pname in ["lin.w", "lin.b"] {
        let x = x.clone();
        let lin = lin.clone();
        check_param(&mut store, pname, EPS, TOL, move |t, s| {
            let mut sess = Session::new(t, s);
            let v = sess.input(x.clone());
            let loss = lin.forward(&mut sess, v).powf(2.0).sum_all();
            (loss, sess.into_bindings())
        });
    }
}

#[test]
fn mlp_input_and_param_grads() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(3);
    // Tanh keeps the graph smooth for finite differences.
    let mlp = Mlp::new(&mut store, &mut rng, "mlp", &[4, 6, 2], Activation::Tanh);
    let x = rand_t(&[3, 4], 4);
    {
        let store = &store;
        let mlp = &mlp;
        check_scalar(&x, EPS, |t, v| {
            let mut sess = Session::new(t, store);
            mlp.forward(&mut sess, v).powf(2.0).sum_all()
        })
        .assert_close(TOL);
    }
    let mlp2 = mlp.clone();
    check_param(&mut store, "mlp.0.w", EPS, TOL, move |t, s| {
        let mut sess = Session::new(t, s);
        let v = sess.input(x.clone());
        let loss = mlp2.forward(&mut sess, v).powf(2.0).sum_all();
        (loss, sess.into_bindings())
    });
}

// --- attention ---

#[test]
fn attention_input_and_param_grads() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(5);
    let attn = Attention::new(&mut store, &mut rng, "a", 4, 6);
    let x = rand_t(&[2, 3, 4], 6);
    {
        let store = &store;
        let attn = &attn;
        check_scalar(&x, EPS, |t, v| {
            let mut sess = Session::new(t, store);
            attn.forward(&mut sess, v, v, v).powf(2.0).sum_all()
        })
        .assert_close(TOL);
    }
    for pname in ["a.wq.w", "a.wk.w", "a.wv.w"] {
        let x = x.clone();
        let attn = attn.clone();
        check_param(&mut store, pname, EPS, TOL, move |t, s| {
            let mut sess = Session::new(t, s);
            let v = sess.input(x.clone());
            let loss = attn.forward(&mut sess, v, v, v).powf(2.0).sum_all();
            (loss, sess.into_bindings())
        });
    }
}

// --- cheb ---

#[test]
fn cheb_gcn_input_and_param_grads() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(7);
    let net = random_geometric(5, 0.9, &mut rng);
    let basis = cheb_polynomials(&scaled_laplacian(net.adjacency()), 3);
    let cheb = ChebGcn::new(&mut store, &mut rng, "c", 3, 2, basis);
    let x = rand_t(&[2, 5, 3], 8);
    {
        let store = &store;
        let cheb = &cheb;
        check_scalar(&x, EPS, |t, v| {
            let mut sess = Session::new(t, store);
            cheb.forward(&mut sess, v).powf(2.0).sum_all()
        })
        .assert_close(TOL);
    }
    for pname in ["c.t0", "c.t2", "c.b"] {
        let x = x.clone();
        let cheb = cheb.clone();
        check_param(&mut store, pname, EPS, TOL, move |t, s| {
            let mut sess = Session::new(t, s);
            let v = sess.input(x.clone());
            let loss = cheb.forward(&mut sess, v).powf(2.0).sum_all();
            (loss, sess.into_bindings())
        });
    }
}

// --- gcn ---

#[test]
fn diffusion_gcn_input_and_param_grads() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(9);
    let net = random_geometric(5, 0.9, &mut rng);
    let supports = SupportSet::diffusion(&net, 2);
    let gcn = DiffusionGcn::new(&mut store, &mut rng, "g", 3, 2, supports, false);
    let x = rand_t(&[2, 5, 3], 10);
    {
        let store = &store;
        let gcn = &gcn;
        check_scalar(&x, EPS, |t, v| {
            let mut sess = Session::new(t, store);
            gcn.forward(&mut sess, v, None).powf(2.0).sum_all()
        })
        .assert_close(TOL);
    }
    for pname in ["g.w0", "g.b"] {
        let x = x.clone();
        let gcn = gcn.clone();
        check_param(&mut store, pname, EPS, TOL, move |t, s| {
            let mut sess = Session::new(t, s);
            let v = sess.input(x.clone());
            let loss = gcn.forward(&mut sess, v, None).powf(2.0).sum_all();
            (loss, sess.into_bindings())
        });
    }
}

#[test]
fn adaptive_adjacency_param_grads() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(11);
    let adp = AdaptiveAdjacency::new(&mut store, &mut rng, "adp", 5, 4);
    // The adjacency applies relu(E1 E2ᵀ); positive embeddings keep every
    // pre-activation away from the kink so central differences are valid.
    for id in store.ids().collect::<Vec<_>>() {
        let shape = store.value(id).shape().to_vec();
        *store.value_mut(id) = rng.uniform_tensor(&shape, 0.1, 0.6);
    }
    let w = rand_t(&[5, 5], 12);
    for pname in ["adp.e1", "adp.e2"] {
        let w = w.clone();
        let adp = adp.clone();
        check_param(&mut store, pname, 1e-3, TOL, move |t, s| {
            let mut sess = Session::new(t, s);
            let wv = sess.input(w.clone());
            let loss = adp.adjacency(&mut sess).mul(wv).sum_all();
            (loss, sess.into_bindings())
        });
    }
}

// --- gru ---

#[test]
fn gru_cell_two_step_input_and_param_grads() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(13);
    let cell = GruCell::new(&mut store, &mut rng, "g", 3, 4);
    let x = rand_t(&[2, 3], 14);
    // Two chained steps exercise the recurrent path h -> h'.
    {
        let store = &store;
        let cell = &cell;
        check_scalar(&x, EPS, |t, v| {
            let mut sess = Session::new(t, store);
            let h0 = sess.input(Tensor::zeros(&[2, 4]));
            let h1 = cell.step(&mut sess, v, h0);
            let h2 = cell.step(&mut sess, v, h1);
            h2.powf(2.0).sum_all()
        })
        .assert_close(TOL);
    }
    for pname in ["g.z.w", "g.r.w", "g.c.w", "g.c.b"] {
        let x = x.clone();
        let cell = cell.clone();
        check_param(&mut store, pname, EPS, TOL, move |t, s| {
            let mut sess = Session::new(t, s);
            let v = sess.input(x.clone());
            let h0 = sess.input(Tensor::zeros(&[2, 4]));
            let h1 = cell.step(&mut sess, v, h0);
            let h2 = cell.step(&mut sess, v, h1);
            (h2.powf(2.0).sum_all(), sess.into_bindings())
        });
    }
}

#[test]
fn dcgru_cell_input_and_param_grads() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(15);
    let net = random_geometric(4, 0.9, &mut rng);
    let supports = SupportSet::diffusion(&net, 1);
    let cell = DcGruCell::new(&mut store, &mut rng, "d", 2, 3, supports);
    let x = rand_t(&[2, 4, 2], 16);
    {
        let store = &store;
        let cell = &cell;
        check_scalar(&x, EPS, |t, v| {
            let mut sess = Session::new(t, store);
            let h0 = sess.input(Tensor::zeros(&[2, 4, 3]));
            cell.step(&mut sess, v, h0).powf(2.0).sum_all()
        })
        .assert_close(TOL);
    }
    let cell2 = cell.clone();
    check_param(&mut store, "d.z.w0", EPS, TOL, move |t, s| {
        let mut sess = Session::new(t, s);
        let v = sess.input(x.clone());
        let h0 = sess.input(Tensor::zeros(&[2, 4, 3]));
        let loss = cell2.step(&mut sess, v, h0).powf(2.0).sum_all();
        (loss, sess.into_bindings())
    });
}

// --- tcn ---

#[test]
fn conv1d_layer_input_and_param_grads() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(17);
    let conv = Conv1dLayer::new(&mut store, &mut rng, "t", 3, 2, 2, 1, 1);
    let x = rand_t(&[2, 3, 5], 18);
    {
        let store = &store;
        let conv = &conv;
        check_scalar(&x, EPS, |t, v| {
            let mut sess = Session::new(t, store);
            conv.forward(&mut sess, v).powf(2.0).sum_all()
        })
        .assert_close(TOL);
    }
    for pname in ["t.w", "t.b"] {
        let x = x.clone();
        let conv = conv.clone();
        check_param(&mut store, pname, EPS, TOL, move |t, s| {
            let mut sess = Session::new(t, s);
            let v = sess.input(x.clone());
            let loss = conv.forward(&mut sess, v).powf(2.0).sum_all();
            (loss, sess.into_bindings())
        });
    }
}

#[test]
fn gated_tcn_input_and_param_grads() {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(19);
    let tcn = GatedTcn::new(&mut store, &mut rng, "gt", 3, 2, 2, 2, 2);
    let x = rand_t(&[2, 3, 6], 20);
    {
        let store = &store;
        let tcn = &tcn;
        check_scalar(&x, EPS, |t, v| {
            let mut sess = Session::new(t, store);
            tcn.forward(&mut sess, v).powf(2.0).sum_all()
        })
        .assert_close(TOL);
    }
    for pname in ["gt.filter.w", "gt.gate.w"] {
        let x = x.clone();
        let tcn = tcn.clone();
        check_param(&mut store, pname, EPS, TOL, move |t, s| {
            let mut sess = Session::new(t, s);
            let v = sess.input(x.clone());
            let loss = tcn.forward(&mut sess, v).powf(2.0).sum_all();
            (loss, sess.into_bindings())
        });
    }
}
