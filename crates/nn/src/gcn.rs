//! Diffusion graph convolution (Eq. 21–24) and the self-adaptive
//! adjacency matrix (Eq. 23).

use crate::map_last_axis;
use urcl_graph::SupportSet;
use urcl_tensor::autodiff::{Session, Var};
use urcl_tensor::{ParamId, ParamStore, Rng, Tensor};

/// The learned adjacency Ã_adp = Softmax(ReLU(E₁ E₂ᵀ)) of Eq. 23, which
/// captures global spatial correlations the distance graph misses.
#[derive(Debug, Clone)]
pub struct AdaptiveAdjacency {
    e1: ParamId,
    e2: ParamId,
    n: usize,
}

impl AdaptiveAdjacency {
    /// Registers two `[n, emb_dim]` node-embedding tables.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        n: usize,
        emb_dim: usize,
    ) -> Self {
        let e1 = store.add(format!("{name}.e1"), rng.normal_tensor(&[n, emb_dim], 0.0, 0.1));
        let e2 = store.add(format!("{name}.e2"), rng.normal_tensor(&[n, emb_dim], 0.0, 0.1));
        Self { e1, e2, n }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Materialises the `[n, n]` adjacency on the tape.
    pub fn adjacency<'t>(&self, sess: &mut Session<'t, '_>) -> Var<'t> {
        let e1 = sess.param(self.e1);
        let e2 = sess.param(self.e2);
        e1.matmul(e2.transpose(0, 1)).relu().softmax(1)
    }
}

/// Diffusion graph convolution over a fixed [`SupportSet`] plus an
/// optional adaptive adjacency:
///
/// `f(X) = X W₀ + Σ_s (P_s X) W_s [+ (Ã_adp X) W_adp] + b`
///
/// This is Eq. 24 with the K-step power series baked into the support set.
/// Inputs are `[B, N, C_in]` (or `[B*T, N, C_in]` when applied per time
/// step); outputs keep the leading axes with `C_out` channels. Activation
/// is left to the caller.
#[derive(Debug, Clone)]
pub struct DiffusionGcn {
    w_self: ParamId,
    w_supports: Vec<ParamId>,
    w_adaptive: Option<ParamId>,
    bias: ParamId,
    supports: SupportSet,
    in_dim: usize,
    out_dim: usize,
}

impl DiffusionGcn {
    /// The construction-time diffusion supports this layer diffuses over
    /// when no override is passed. Backbones expose these as the support
    /// template for plan input binding.
    pub fn supports(&self) -> &SupportSet {
        &self.supports
    }

    /// Builds the layer. Pass `adaptive = true` to include the learned
    /// adjacency term (requires a separate [`AdaptiveAdjacency`] whose
    /// matrix is handed to [`Self::forward`]).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        supports: SupportSet,
        adaptive: bool,
    ) -> Self {
        let w_self = store.add(format!("{name}.w0"), rng.glorot(&[in_dim, out_dim]));
        let w_supports = (0..supports.len())
            .map(|i| store.add(format!("{name}.w{}", i + 1), rng.glorot(&[in_dim, out_dim])))
            .collect();
        let w_adaptive =
            adaptive.then(|| store.add(format!("{name}.wadp"), rng.glorot(&[in_dim, out_dim])));
        let bias = store.add(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Self {
            w_self,
            w_supports,
            w_adaptive,
            bias,
            supports,
            in_dim,
            out_dim,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Whether the layer expects an adaptive adjacency at forward time.
    pub fn wants_adaptive(&self) -> bool {
        self.w_adaptive.is_some()
    }

    /// `x: [.., N, C_in] -> [.., N, C_out]`. `adaptive` must be `Some`
    /// exactly when the layer was built with `adaptive = true`.
    pub fn forward<'t>(
        &self,
        sess: &mut Session<'t, '_>,
        x: Var<'t>,
        adaptive: Option<Var<'t>>,
    ) -> Var<'t> {
        self.forward_with(sess, x, adaptive, None)
    }

    /// Like [`Self::forward`] but diffusing over `override_supports`
    /// instead of the construction-time supports. Used by the
    /// spatio-temporal augmentations, which perturb the sensor graph; the
    /// override must have the same support count (same `K`, same
    /// directedness) so the per-support weights still line up.
    pub fn forward_with<'t>(
        &self,
        sess: &mut Session<'t, '_>,
        x: Var<'t>,
        adaptive: Option<Var<'t>>,
        override_supports: Option<&SupportSet>,
    ) -> Var<'t> {
        assert_eq!(
            adaptive.is_some(),
            self.w_adaptive.is_some(),
            "adaptive adjacency presence mismatch"
        );
        let supports = override_supports.unwrap_or(&self.supports);
        assert_eq!(
            supports.len(),
            self.supports.len(),
            "override support count mismatch"
        );
        let w_self = sess.param(self.w_self);
        let bias = sess.param(self.bias);

        // Self term.
        let mut out = linear_term(x, w_self, self.in_dim, self.out_dim);

        // Fixed diffusion supports, registered as named input slots so a
        // plan-compiling caller can promote them to per-replay inputs
        // (one compiled plan per architecture, any augmentation draw).
        for (p, &wid) in supports.all().iter().zip(&self.w_supports) {
            let pv = sess.slot_input("support", (*p).clone());
            let px = pv.matmul(x); // [N,N] @ [.., N, C] broadcast
            let w = sess.param(wid);
            out = out.add(linear_term(px, w, self.in_dim, self.out_dim));
        }

        // Adaptive term.
        if let (Some(adj), Some(wid)) = (adaptive, self.w_adaptive) {
            let ax = adj.matmul(x);
            let w = sess.param(wid);
            out = out.add(linear_term(ax, w, self.in_dim, self.out_dim));
        }
        out.add(bias)
    }
}

fn linear_term<'t>(x: Var<'t>, w: Var<'t>, in_dim: usize, out_dim: usize) -> Var<'t> {
    map_last_axis(x, in_dim, out_dim, |flat| flat.matmul(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_graph::SensorNetwork;
    use urcl_tensor::autodiff::Tape;

    fn path3() -> SensorNetwork {
        SensorNetwork::from_edges(3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
    }

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(1);
        let supports = SupportSet::diffusion(&path3(), 2);
        let gcn = DiffusionGcn::new(&mut store, &mut rng, "g", 4, 8, supports, false);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(Tensor::ones(&[5, 3, 4]));
        let y = gcn.forward(&mut sess, x, None);
        assert_eq!(y.shape(), vec![5, 3, 8]);
    }

    #[test]
    fn diffusion_mixes_neighbours() {
        // With identity weights (in==out) the support term must move
        // information between connected nodes.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(2);
        let supports = SupportSet::diffusion(&path3(), 1);
        let gcn = DiffusionGcn::new(&mut store, &mut rng, "g", 1, 1, supports, false);
        // w0 = 0 so only the diffusion term contributes; w1 = 1.
        *store.value_mut(gcn.w_self) = Tensor::zeros(&[1, 1]);
        *store.value_mut(gcn.w_supports[0]) = Tensor::ones(&[1, 1]);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        // Only node 0 carries signal.
        let x = sess.input(Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 3, 1]));
        let y = gcn.forward(&mut sess, x, None).value();
        // P row 1 has weight on node 0, so node 1 receives signal.
        assert!(y.data()[1] > 0.0, "neighbour did not receive signal: {y:?}");
        // Node 2 is two hops away; with K=1 it receives nothing.
        assert!(y.data()[2].abs() < 1e-6);
    }

    #[test]
    fn adaptive_adjacency_rows_are_distributions() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(3);
        let adp = AdaptiveAdjacency::new(&mut store, &mut rng, "a", 4, 3);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let a = adp.adjacency(&mut sess).value();
        assert_eq!(a.shape(), &[4, 4]);
        for i in 0..4 {
            let s: f32 = a.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
        assert!(a.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn gradients_flow_to_all_weights() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(4);
        let supports = SupportSet::diffusion(&path3(), 2);
        let adp = AdaptiveAdjacency::new(&mut store, &mut rng, "a", 3, 2);
        let gcn = DiffusionGcn::new(&mut store, &mut rng, "g", 2, 2, supports, true);
        store.zero_grads();
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(rng.normal_tensor(&[2, 3, 2], 0.0, 1.0));
        let adj = adp.adjacency(&mut sess);
        let y = gcn.forward(&mut sess, x, Some(adj));
        let loss = y.powf(2.0).mean_all();
        let grads = tape.backward(loss);
        let binds = sess.into_bindings();
        store.accumulate_grads(&binds, &grads);
        for id in store.ids() {
            let gnorm = store.grad(id).norm();
            assert!(
                gnorm > 0.0,
                "parameter {} received no gradient",
                store.name(id)
            );
        }
    }

    #[test]
    #[should_panic(expected = "adaptive adjacency presence mismatch")]
    fn adaptive_mismatch_panics() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(5);
        let supports = SupportSet::diffusion(&path3(), 1);
        let gcn = DiffusionGcn::new(&mut store, &mut rng, "g", 2, 2, supports, true);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(Tensor::ones(&[1, 3, 2]));
        let _ = gcn.forward(&mut sess, x, None);
    }
}
