//! Affine layers and feed-forward stacks.

use crate::map_last_axis;
use urcl_tensor::autodiff::{Session, Var};
use urcl_tensor::{ParamId, ParamStore, Rng};

/// Activation functions selectable for [`Mlp`] hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// tanh(x)
    Tanh,
    /// logistic sigmoid
    Sigmoid,
    /// identity
    None,
}

fn apply<'t>(a: Activation, x: Var<'t>) -> Var<'t> {
    match a {
        Activation::Relu => x.relu(),
        Activation::Tanh => x.tanh(),
        Activation::Sigmoid => x.sigmoid(),
        Activation::None => x,
    }
}

/// A dense affine map `y = x W + b` applied over the last axis of an
/// arbitrary-rank input.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a Glorot-initialised weight (and optional zero bias) in
    /// the store.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.add(format!("{name}.w"), rng.glorot(&[in_dim, out_dim]));
        let b = bias.then(|| {
            store.add(
                format!("{name}.b"),
                urcl_tensor::Tensor::zeros(&[out_dim]),
            )
        });
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// `[.., in] -> [.., out]`.
    pub fn forward<'t>(&self, sess: &mut Session<'t, '_>, x: Var<'t>) -> Var<'t> {
        let w = sess.param(self.w);
        let b = self.b.map(|id| sess.param(id));
        map_last_axis(x, self.in_dim, self.out_dim, |flat| {
            let y = flat.matmul(w);
            match b {
                Some(b) => y.add(b),
                None => y,
            }
        })
    }
}

/// A stack of [`Linear`] layers with an activation between (not after)
/// them — the stacked feed-forward STDecoder of Eq. 27.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP through `dims`, e.g. `[256, 512, 12]` gives two
    /// layers 256→512→12.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        dims: &[usize],
        activation: Activation,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.{i}"), w[0], w[1], true))
            .collect();
        Self { layers, activation }
    }

    /// `[.., dims[0]] -> [.., dims.last()]`.
    pub fn forward<'t>(&self, sess: &mut Session<'t, '_>, x: Var<'t>) -> Var<'t> {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(sess, h);
            if i + 1 < self.layers.len() {
                h = apply(self.activation, h);
            }
        }
        h
    }

    /// Number of affine layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_tensor::autodiff::Tape;
    use urcl_tensor::Tensor;

    #[test]
    fn linear_shapes_and_values() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(1);
        let lin = Linear::new(&mut store, &mut rng, "l", 3, 2, true);
        // Overwrite with known weights.
        *store.value_mut(lin.w) =
            Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0], &[3, 2]);
        *store.value_mut(lin.b.unwrap()) = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let y = lin.forward(&mut sess, x);
        assert_eq!(y.value().data(), &[11.0, 22.0]);
    }

    #[test]
    fn linear_applies_over_leading_axes() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(2);
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 5, false);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(Tensor::ones(&[2, 3, 7, 4]));
        let y = lin.forward(&mut sess, x);
        assert_eq!(y.shape(), vec![2, 3, 7, 5]);
    }

    #[test]
    fn mlp_learns_identity_ish_mapping() {
        // Train y = 2x with a 1-16-1 MLP for a few hundred steps.
        use urcl_tensor::{Adam, Optimizer};
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(3);
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[1, 16, 1], Activation::Tanh);
        let mut opt = Adam::new(0.01);
        let xs: Vec<f32> = (0..16).map(|i| i as f32 / 16.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x).collect();
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            store.zero_grads();
            let tape = Tape::new();
            let mut sess = Session::new(&tape, &store);
            let x = sess.input(Tensor::from_vec(xs.clone(), &[16, 1]));
            let y = sess.input(Tensor::from_vec(ys.clone(), &[16, 1]));
            let pred = mlp.forward(&mut sess, x);
            let loss = pred.sub(y).powf(2.0).mean_all();
            last = loss.value().item();
            let grads = tape.backward(loss);
            let binds = sess.into_bindings();
            store.accumulate_grads(&binds, &grads);
            opt.step(&mut store);
        }
        assert!(last < 1e-2, "final loss {last}");
    }

    #[test]
    #[should_panic(expected = "does not match layer input")]
    fn wrong_input_dim_panics() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(4);
        let lin = Linear::new(&mut store, &mut rng, "l", 3, 2, false);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(Tensor::ones(&[1, 4]));
        let _ = lin.forward(&mut sess, x);
    }
}
