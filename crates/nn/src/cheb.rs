//! Chebyshev graph convolution (ChebNet), the spatial block of the STGCN
//! baseline: `f(X) = Σ_m T_m(L̃) X W_m` over a precomputed polynomial
//! basis of the scaled Laplacian.

use crate::map_last_axis;
use urcl_tensor::autodiff::{Session, Var};
use urcl_tensor::{ParamId, ParamStore, Rng, Tensor};

/// ChebNet layer with a fixed polynomial basis.
#[derive(Debug, Clone)]
pub struct ChebGcn {
    weights: Vec<ParamId>,
    bias: ParamId,
    basis: Vec<Tensor>,
    in_dim: usize,
    out_dim: usize,
}

impl ChebGcn {
    /// Builds the layer from a Chebyshev basis
    /// (see [`urcl_graph::cheb_polynomials`]).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        basis: Vec<Tensor>,
    ) -> Self {
        assert!(!basis.is_empty(), "ChebGcn needs at least T_0");
        let weights = (0..basis.len())
            .map(|m| store.add(format!("{name}.t{m}"), rng.glorot(&[in_dim, out_dim])))
            .collect();
        let bias = store.add(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Self {
            weights,
            bias,
            basis,
            in_dim,
            out_dim,
        }
    }

    /// Polynomial order (number of basis matrices).
    pub fn order(&self) -> usize {
        self.basis.len()
    }

    /// `x: [.., N, C_in] -> [.., N, C_out]`.
    pub fn forward<'t>(&self, sess: &mut Session<'t, '_>, x: Var<'t>) -> Var<'t> {
        let mut out: Option<Var<'t>> = None;
        for (t_m, &wid) in self.basis.iter().zip(&self.weights) {
            let tv = sess.input(t_m.clone());
            let tx = tv.matmul(x);
            let w = sess.param(wid);
            let term = map_last_axis(tx, self.in_dim, self.out_dim, |f| f.matmul(w));
            out = Some(match out {
                Some(acc) => acc.add(term),
                None => term,
            });
        }
        let bias = sess.param(self.bias);
        out.expect("non-empty basis").add(bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_graph::{cheb_polynomials, scaled_laplacian, SensorNetwork};
    use urcl_tensor::autodiff::Tape;

    fn basis3() -> Vec<Tensor> {
        let g = SensorNetwork::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
            ],
        );
        cheb_polynomials(&scaled_laplacian(g.adjacency()), 3)
    }

    #[test]
    fn forward_shape_and_order() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(1);
        let layer = ChebGcn::new(&mut store, &mut rng, "c", 3, 6, basis3());
        assert_eq!(layer.order(), 3);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(Tensor::ones(&[2, 4, 3]));
        let y = layer.forward(&mut sess, x);
        assert_eq!(y.shape(), vec![2, 4, 6]);
    }

    #[test]
    fn gradients_reach_every_order() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(2);
        let layer = ChebGcn::new(&mut store, &mut rng, "c", 2, 2, basis3());
        store.zero_grads();
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(rng.normal_tensor(&[1, 4, 2], 0.0, 1.0));
        let y = layer.forward(&mut sess, x);
        let grads = tape.backward(y.powf(2.0).mean_all());
        let binds = sess.into_bindings();
        store.accumulate_grads(&binds, &grads);
        for id in store.ids() {
            assert!(store.grad(id).norm() > 0.0, "no grad for {}", store.name(id));
        }
    }
}
