//! Scaled dot-product attention, the mechanism behind the GeoMAN
//! baseline's multi-level (spatial + temporal) attention.

use crate::linear::Linear;
use urcl_tensor::autodiff::{Session, Var};
use urcl_tensor::{ParamStore, Rng};

/// Single-head scaled dot-product attention with learned projections:
/// `Attn(Q, K, V) = softmax(QWq (KWk)ᵀ / √d) VWv`.
#[derive(Debug, Clone)]
pub struct Attention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    dim: usize,
}

impl Attention {
    /// Builds projections from `model_dim` into an attention space of
    /// size `attn_dim` (values are projected to `attn_dim` too).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        model_dim: usize,
        attn_dim: usize,
    ) -> Self {
        Self {
            wq: Linear::new(store, rng, &format!("{name}.wq"), model_dim, attn_dim, false),
            wk: Linear::new(store, rng, &format!("{name}.wk"), model_dim, attn_dim, false),
            wv: Linear::new(store, rng, &format!("{name}.wv"), model_dim, attn_dim, false),
            dim: attn_dim,
        }
    }

    /// Attention output size.
    pub fn out_dim(&self) -> usize {
        self.dim
    }

    /// `query: [B, Tq, D]`, `key`/`value`: `[B, Tk, D]` →
    /// `[B, Tq, attn_dim]`.
    pub fn forward<'t>(
        &self,
        sess: &mut Session<'t, '_>,
        query: Var<'t>,
        key: Var<'t>,
        value: Var<'t>,
    ) -> Var<'t> {
        let q = self.wq.forward(sess, query);
        let k = self.wk.forward(sess, key);
        let v = self.wv.forward(sess, value);
        let kt = k.transpose(1, 2); // [B, d, Tk]
        let scores = q.matmul(kt).scale(1.0 / (self.dim as f32).sqrt()); // [B, Tq, Tk]
        let weights = scores.softmax(2);
        weights.matmul(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_tensor::autodiff::Tape;
    use urcl_tensor::Tensor;

    #[test]
    fn output_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(1);
        let attn = Attention::new(&mut store, &mut rng, "a", 6, 4);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let q = sess.input(rng.normal_tensor(&[2, 5, 6], 0.0, 1.0));
        let kv = sess.input(rng.normal_tensor(&[2, 9, 6], 0.0, 1.0));
        let y = attn.forward(&mut sess, q, kv, kv);
        assert_eq!(y.shape(), vec![2, 5, 4]);
    }

    #[test]
    fn uniform_keys_average_values() {
        // With zeroed query projection, scores are all equal and attention
        // returns the mean of the projected values.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(2);
        let attn = Attention::new(&mut store, &mut rng, "a", 2, 2);
        for id in store.ids() {
            if store.name(id) == "a.wq.w" {
                *store.value_mut(id) = Tensor::zeros(&[2, 2]);
            }
            if store.name(id) == "a.wv.w" {
                *store.value_mut(id) = Tensor::eye(2);
            }
        }
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let q = sess.input(Tensor::ones(&[1, 1, 2]));
        let kv = sess.input(Tensor::from_vec(vec![0.0, 0.0, 4.0, 2.0], &[1, 2, 2]));
        let y = attn.forward(&mut sess, q, kv, kv).value();
        assert!((y.data()[0] - 2.0).abs() < 1e-5);
        assert!((y.data()[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gradients_flow() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(3);
        let attn = Attention::new(&mut store, &mut rng, "a", 3, 3);
        store.zero_grads();
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let q = sess.input(rng.normal_tensor(&[1, 4, 3], 0.0, 1.0));
        let y = attn.forward(&mut sess, q, q, q);
        let grads = tape.backward(y.powf(2.0).mean_all());
        let binds = sess.into_bindings();
        store.accumulate_grads(&binds, &grads);
        for id in store.ids() {
            assert!(store.grad(id).norm() > 0.0, "no grad for {}", store.name(id));
        }
    }
}
