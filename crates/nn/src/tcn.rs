//! Temporal convolution: dilated causal conv1d (Eq. 25) and the gated
//! variant `h = tanh(W₁ ⋆ X) ⊙ σ(W₂ ⋆ X)` of Eq. 26.

use urcl_tensor::autodiff::{Session, Var};
use urcl_tensor::{ParamId, ParamStore, Rng, Tensor};

/// A dilated causal 1-D convolution over the last axis of a
/// `[B, C_in, T]` input, with per-channel bias.
#[derive(Debug, Clone)]
pub struct Conv1dLayer {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
    kernel: usize,
    dilation: usize,
    /// Zeros virtually prepended to the time axis; `0` shrinks the output
    /// (GraphWaveNet style), `(kernel-1)*dilation` keeps the length.
    pad_left: usize,
}

impl Conv1dLayer {
    /// Registers a `[out, in, kernel]` weight and `[out]` bias.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        kernel: usize,
        dilation: usize,
        pad_left: usize,
    ) -> Self {
        let fan = (in_dim * kernel) as f32;
        let bound = (1.0 / fan).sqrt();
        let w = store.add(
            format!("{name}.w"),
            rng.uniform_tensor(&[out_dim, in_dim, kernel], -bound, bound),
        );
        let b = store.add(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Self {
            w,
            b,
            in_dim,
            out_dim,
            kernel,
            dilation,
            pad_left,
        }
    }

    /// Output length for a given input length.
    pub fn out_len(&self, t: usize) -> usize {
        t + self.pad_left - (self.kernel - 1) * self.dilation
    }

    /// `x: [B, C_in, T] -> [B, C_out, out_len(T)]`.
    pub fn forward<'t>(&self, sess: &mut Session<'t, '_>, x: Var<'t>) -> Var<'t> {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "conv input must be [B, C, T]");
        assert_eq!(shape[1], self.in_dim, "conv channel mismatch");
        let w = sess.param(self.w);
        let b = sess.param(self.b);
        let y = x.conv1d(w, self.dilation, self.pad_left);
        // Bias over the channel axis: [out] -> [1, out, 1].
        let bb = b.reshape(&[1, self.out_dim, 1]);
        y.add(bb)
    }
}

/// Gated TCN (Eq. 26): two parallel convolutions combined as
/// `tanh(a) ⊙ sigmoid(b)`. Both branches share geometry.
#[derive(Debug, Clone)]
pub struct GatedTcn {
    filter: Conv1dLayer,
    gate: Conv1dLayer,
}

impl GatedTcn {
    /// Builds the two parallel branches.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        kernel: usize,
        dilation: usize,
        pad_left: usize,
    ) -> Self {
        Self {
            filter: Conv1dLayer::new(
                store,
                rng,
                &format!("{name}.filter"),
                in_dim,
                out_dim,
                kernel,
                dilation,
                pad_left,
            ),
            gate: Conv1dLayer::new(
                store,
                rng,
                &format!("{name}.gate"),
                in_dim,
                out_dim,
                kernel,
                dilation,
                pad_left,
            ),
        }
    }

    /// Output length for a given input length.
    pub fn out_len(&self, t: usize) -> usize {
        self.filter.out_len(t)
    }

    /// `x: [B, C_in, T] -> [B, C_out, out_len(T)]`.
    pub fn forward<'t>(&self, sess: &mut Session<'t, '_>, x: Var<'t>) -> Var<'t> {
        let f = self.filter.forward(sess, x).tanh();
        let g = self.gate.forward(sess, x).sigmoid();
        f.mul(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_tensor::autodiff::Tape;

    #[test]
    fn conv_shapes_shrink_without_padding() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(1);
        let conv = Conv1dLayer::new(&mut store, &mut rng, "c", 3, 5, 2, 2, 0);
        assert_eq!(conv.out_len(12), 10);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(Tensor::ones(&[4, 3, 12]));
        let y = conv.forward(&mut sess, x);
        assert_eq!(y.shape(), vec![4, 5, 10]);
    }

    #[test]
    fn causal_padding_keeps_length() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(2);
        let conv = Conv1dLayer::new(&mut store, &mut rng, "c", 1, 1, 3, 1, 2);
        assert_eq!(conv.out_len(8), 8);
    }

    #[test]
    fn bias_broadcasts_over_channels() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(3);
        let conv = Conv1dLayer::new(&mut store, &mut rng, "c", 1, 2, 1, 1, 0);
        *store.value_mut(conv.w) = Tensor::zeros(&[2, 1, 1]);
        *store.value_mut(conv.b) = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(Tensor::ones(&[1, 1, 3]));
        let y = conv.forward(&mut sess, x).value();
        assert_eq!(y.data(), &[1.0, 1.0, 1.0, -1.0, -1.0, -1.0]);
    }

    #[test]
    fn gated_tcn_bounded_output() {
        // tanh ⊙ sigmoid is bounded to (-1, 1).
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(4);
        let tcn = GatedTcn::new(&mut store, &mut rng, "g", 2, 4, 2, 1, 0);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(rng.normal_tensor(&[3, 2, 9], 0.0, 5.0));
        let y = tcn.forward(&mut sess, x).value();
        assert_eq!(y.shape(), &[3, 4, 8]);
        assert!(y.data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn gradients_flow_through_gate() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(5);
        let tcn = GatedTcn::new(&mut store, &mut rng, "g", 1, 2, 2, 1, 1);
        store.zero_grads();
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(rng.normal_tensor(&[2, 1, 6], 0.0, 1.0));
        let y = tcn.forward(&mut sess, x);
        let grads = tape.backward(y.powf(2.0).mean_all());
        let binds = sess.into_bindings();
        store.accumulate_grads(&binds, &grads);
        for id in store.ids() {
            assert!(store.grad(id).norm() > 0.0, "no grad for {}", store.name(id));
        }
    }
}
