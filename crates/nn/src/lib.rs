//! # urcl-nn
//!
//! Neural-network layers on the `urcl-tensor` autodiff substrate — the
//! building blocks of Section IV-D of the URCL paper and of its baseline
//! models:
//!
//! * [`Linear`] / [`Mlp`] — affine maps and feed-forward stacks (the
//!   STDecoder of Fig. 4 / Eq. 27).
//! * [`DiffusionGcn`] — the diffusion graph convolution of Eq. 21–24,
//!   including the self-adaptive adjacency of Eq. 23.
//! * [`ChebGcn`] — Chebyshev graph convolution (the STGCN baseline).
//! * [`Conv1dLayer`] / [`GatedTcn`] — dilated causal temporal convolution
//!   with the output gate of Eq. 25–26.
//! * [`GruCell`] / [`DcGruCell`] — recurrent cells; `DcGruCell` replaces
//!   the dense gates with diffusion graph convolutions (the DCRNN
//!   baseline).
//! * [`Attention`] — scaled dot-product attention (the GeoMAN baseline).
//!
//! Layers register their parameters in a shared
//! [`urcl_tensor::ParamStore`] at construction and rebuild their forward
//! graph on a fresh tape every step via [`urcl_tensor::Session`].

pub mod attention;
pub mod cheb;
pub mod gcn;
pub mod gru;
pub mod linear;
pub mod tcn;

pub use attention::Attention;
pub use cheb::ChebGcn;
pub use gcn::{AdaptiveAdjacency, DiffusionGcn};
pub use gru::{DcGruCell, GruCell};
pub use linear::{Linear, Mlp};
pub use tcn::{Conv1dLayer, GatedTcn};

use urcl_tensor::autodiff::Var;

/// Applies a linear layer over the last axis of an arbitrary-rank input:
/// flattens to `[rows, in]`, maps, restores the leading shape with the new
/// channel count. Shared by every layer in this crate.
pub(crate) fn map_last_axis<'t>(
    x: Var<'t>,
    in_dim: usize,
    out_dim: usize,
    f: impl FnOnce(Var<'t>) -> Var<'t>,
) -> Var<'t> {
    let shape = x.shape();
    assert_eq!(
        *shape.last().expect("input must have at least one axis"),
        in_dim,
        "last axis {:?} does not match layer input {in_dim}",
        shape
    );
    let rows: usize = shape[..shape.len() - 1].iter().product();
    let flat = x.reshape(&[rows, in_dim]);
    let out = f(flat);
    let mut out_shape = shape[..shape.len() - 1].to_vec();
    out_shape.push(out_dim);
    out.reshape(&out_shape)
}
