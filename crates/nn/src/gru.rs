//! Recurrent cells: a dense GRU and the diffusion-convolutional GRU
//! (DCGRU) that powers the DCRNN baseline, where every gate's dense map is
//! replaced by a diffusion graph convolution over the sensor network.

use crate::gcn::DiffusionGcn;
use crate::linear::Linear;
use urcl_graph::SupportSet;
use urcl_tensor::autodiff::{Session, Var};
use urcl_tensor::{ParamStore, Rng};

/// Standard GRU cell over `[B, C]` inputs and `[B, H]` states.
#[derive(Debug, Clone)]
pub struct GruCell {
    update: Linear,
    reset: Linear,
    candidate: Linear,
    hidden: usize,
}

impl GruCell {
    /// Builds a cell with the given input and hidden sizes.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        input: usize,
        hidden: usize,
    ) -> Self {
        let cat = input + hidden;
        Self {
            update: Linear::new(store, rng, &format!("{name}.z"), cat, hidden, true),
            reset: Linear::new(store, rng, &format!("{name}.r"), cat, hidden, true),
            candidate: Linear::new(store, rng, &format!("{name}.c"), cat, hidden, true),
            hidden,
        }
    }

    /// Hidden size.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// One step: `(x: [B, C], h: [B, H]) -> h': [B, H]`.
    pub fn step<'t>(&self, sess: &mut Session<'t, '_>, x: Var<'t>, h: Var<'t>) -> Var<'t> {
        let tape = sess.tape();
        let xh = tape.concat(&[x, h], 1);
        let z = self.update.forward(sess, xh).sigmoid();
        let r = self.reset.forward(sess, xh).sigmoid();
        let xrh = tape.concat(&[x, r.mul(h)], 1);
        let c = self.candidate.forward(sess, xrh).tanh();
        // h' = z ⊙ h + (1 − z) ⊙ c
        z.mul(h).add(z.neg().add_scalar(1.0).mul(c))
    }
}

/// DCGRU cell: GRU gates computed by diffusion graph convolution, state
/// kept per node. Inputs `[B, N, C]`, state `[B, N, H]`.
#[derive(Debug, Clone)]
pub struct DcGruCell {
    update: DiffusionGcn,
    reset: DiffusionGcn,
    candidate: DiffusionGcn,
    hidden: usize,
}

impl DcGruCell {
    /// Builds a cell whose gates diffuse over `supports`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut Rng,
        name: &str,
        input: usize,
        hidden: usize,
        supports: SupportSet,
    ) -> Self {
        let cat = input + hidden;
        Self {
            update: DiffusionGcn::new(
                store,
                rng,
                &format!("{name}.z"),
                cat,
                hidden,
                supports.clone(),
                false,
            ),
            reset: DiffusionGcn::new(
                store,
                rng,
                &format!("{name}.r"),
                cat,
                hidden,
                supports.clone(),
                false,
            ),
            candidate: DiffusionGcn::new(
                store,
                rng,
                &format!("{name}.c"),
                cat,
                hidden,
                supports,
                false,
            ),
            hidden,
        }
    }

    /// Hidden size per node.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// One step: `(x: [B, N, C], h: [B, N, H]) -> h': [B, N, H]`.
    pub fn step<'t>(&self, sess: &mut Session<'t, '_>, x: Var<'t>, h: Var<'t>) -> Var<'t> {
        let tape = sess.tape();
        let xh = tape.concat(&[x, h], 2);
        let z = self.update.forward(sess, xh, None).sigmoid();
        let r = self.reset.forward(sess, xh, None).sigmoid();
        let xrh = tape.concat(&[x, r.mul(h)], 2);
        let c = self.candidate.forward(sess, xrh, None).tanh();
        z.mul(h).add(z.neg().add_scalar(1.0).mul(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urcl_graph::SensorNetwork;
    use urcl_tensor::autodiff::Tape;
    use urcl_tensor::Tensor;

    #[test]
    fn gru_step_shape_and_bounds() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(1);
        let cell = GruCell::new(&mut store, &mut rng, "g", 3, 5);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(rng.normal_tensor(&[2, 3], 0.0, 1.0));
        let h = sess.input(Tensor::zeros(&[2, 5]));
        let h1 = cell.step(&mut sess, x, h);
        assert_eq!(h1.shape(), vec![2, 5]);
        // From zero state, |h'| < 1 (convex mix of 0 and tanh).
        assert!(h1.value().data().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn gru_remembers_with_saturated_update_gate() {
        // Force z ≈ 1 by huge bias: h' ≈ h.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(2);
        let cell = GruCell::new(&mut store, &mut rng, "g", 1, 2);
        // Set update-gate bias very positive.
        for id in store.ids() {
            if store.name(id) == "g.z.b" {
                *store.value_mut(id) = Tensor::full(&[2], 50.0);
            }
        }
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(Tensor::ones(&[1, 1]));
        let h = sess.input(Tensor::from_vec(vec![0.7, -0.3], &[1, 2]));
        let h1 = cell.step(&mut sess, x, h).value();
        assert!((h1.data()[0] - 0.7).abs() < 1e-3);
        assert!((h1.data()[1] + 0.3).abs() < 1e-3);
    }

    #[test]
    fn dcgru_step_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(3);
        let net = SensorNetwork::from_edges(
            3,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)],
        );
        let supports = SupportSet::diffusion(&net, 2);
        let cell = DcGruCell::new(&mut store, &mut rng, "d", 2, 4, supports);
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(rng.normal_tensor(&[2, 3, 2], 0.0, 1.0));
        let h = sess.input(Tensor::zeros(&[2, 3, 4]));
        let h1 = cell.step(&mut sess, x, h);
        assert_eq!(h1.shape(), vec![2, 3, 4]);
    }

    #[test]
    fn dcgru_gradients_flow_over_multiple_steps() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(4);
        let net = SensorNetwork::from_edges(2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let supports = SupportSet::diffusion(&net, 1);
        let cell = DcGruCell::new(&mut store, &mut rng, "d", 1, 3, supports);
        store.zero_grads();
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let mut h = sess.input(Tensor::zeros(&[1, 2, 3]));
        for step in 0..4 {
            let x = sess.input(rng.normal_tensor(&[1, 2, 1], step as f32, 1.0));
            h = cell.step(&mut sess, x, h);
        }
        let grads = tape.backward(h.powf(2.0).mean_all());
        let binds = sess.into_bindings();
        store.accumulate_grads(&binds, &grads);
        let total: f32 = store.ids().map(|id| store.grad(id).norm()).sum();
        assert!(total > 0.0);
    }
}
