//! Multi-tenant runtime: per-tenant sharded workers, hot-swap, and the
//! [`Tenants`] registry.
//!
//! One process serves many dataset/model tenants (METR-LA, PEMS-BAY,
//! PEMS04, PEMS08 analogues, …) concurrently. Each tenant owns:
//!
//! * its own [`ModelSnapshot`] slot, hot-swapped from its own
//!   [`CheckpointDir`] (one trainer per tenant publishes into it);
//! * `shards` independent [`Shard`]s — bounded queue + condvar + worker
//!   thread each — so the request path of one tenant never contends
//!   with another tenant, and within a tenant requests spread across
//!   shards round-robin;
//! * optional response cache with in-flight dedup ([`crate::CachePolicy`]).
//!
//! Admission control: when every shard of a tenant is at its queue
//! bound, the submit returns [`ServeError::Shed`] with the tenant name
//! and observed depth — callers see typed backpressure, queues never
//! grow without bound.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use urcl_core::persist::{CheckpointDir, CheckpointFingerprint};
use urcl_models::Backbone;
use urcl_tensor::{ParamStore, Tensor};

use crate::cache::{CacheKey, Lookup, ResponseCache};
use crate::server::{forward_batch, Forecast, PendingForecast, ServeConfig, ServeError};
use crate::shard::{Pending, Rejected, Shard};
use crate::snapshot::ModelSnapshot;

/// How long an idle worker (or the reload poller) sleeps between
/// shutdown checks; requests interrupt the wait immediately via the
/// shard's condvar.
pub(crate) const IDLE_TICK: Duration = Duration::from_millis(25);

/// A sibling queue must hold at least this many requests before an idle
/// worker steals from it — one queued request is the owning worker's
/// next batch anyway, and moving it would only forfeit its coalescing
/// window.
const STEAL_MIN_DEPTH: usize = 2;

/// How a submit picks its shard.
enum Route {
    /// Round-robin sweep over every shard (the default): admitted by the
    /// first shard with room, shed only when all are full.
    Sweep,
    /// Strict affinity: only shard `key % shards` is probed. Trades
    /// spillover for locality — see [`TenantClient::submit_affine`].
    Affine(u64),
}

/// Point-in-time counters for one tenant (all atomic reads, no locks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests accepted (including cache hits and dedup joins).
    pub requests: u64,
    /// Requests rejected with [`ServeError::Shed`].
    pub shed: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Largest batch fused so far.
    pub max_batch: u64,
    /// Successful snapshot loads/hot-swaps.
    pub swaps: u64,
    /// Failed reload attempts (old snapshot kept serving).
    pub reload_failures: u64,
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// Requests that registered a fresh cache entry (computed forwards).
    pub cache_misses: u64,
    /// Requests that joined an identical in-flight forward.
    pub dedup_joins: u64,
    /// Steal operations: batches an idle shard worker pulled from a hot
    /// sibling's queue.
    pub steals: u64,
    /// Requests served out of stolen batches (each steal moves one or
    /// more queued requests).
    pub stolen: u64,
}

impl TenantStats {
    /// Field-wise sum (registry aggregate; `max_batch` takes the max).
    pub fn merge(&self, other: &TenantStats) -> TenantStats {
        TenantStats {
            requests: self.requests + other.requests,
            shed: self.shed + other.shed,
            batches: self.batches + other.batches,
            max_batch: self.max_batch.max(other.max_batch),
            swaps: self.swaps + other.swaps,
            reload_failures: self.reload_failures + other.reload_failures,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            dedup_joins: self.dedup_joins + other.dedup_joins,
            steals: self.steals + other.steals,
            stolen: self.stolen + other.stolen,
        }
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    max_batch_seen: AtomicU64,
    swaps: AtomicU64,
    reload_failures: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    dedup_joins: AtomicU64,
    steals: AtomicU64,
    stolen: AtomicU64,
}

pub(crate) struct TenantCore {
    name: String,
    model: Box<dyn Backbone + Send + Sync>,
    template: ParamStore,
    source: CheckpointDir,
    config: ServeConfig,
    snapshot: Mutex<Option<Arc<ModelSnapshot>>>,
    fingerprint: Mutex<Option<CheckpointFingerprint>>,
    shards: Vec<Shard>,
    router: AtomicUsize,
    cache: Option<ResponseCache>,
    /// Stop signal for the reload poller (the shards have their own
    /// per-queue drain flags).
    stopping: AtomicBool,
    generation: AtomicU64,
    stats: Counters,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl TenantCore {
    fn input_shape(&self) -> [usize; 3] {
        let cfg = self.model.config();
        [cfg.input_steps, cfg.num_nodes, cfg.channels]
    }

    fn current_generation(&self) -> u64 {
        lock(&self.snapshot)
            .as_ref()
            .map(|s| s.generation())
            .unwrap_or(0)
    }

    fn submit(&self, window: Tensor, route: Route) -> Result<PendingForecast, ServeError> {
        let expected = self.input_shape();
        if window.shape() != expected {
            return Err(ServeError::BadRequest(format!(
                "window shape {:?} does not match tenant {:?} geometry {:?} ([M, N, C])",
                window.shape(),
                self.name,
                expected
            )));
        }
        let (tx, rx) = mpsc::channel();
        let traced = urcl_trace::enabled();

        // Cache fast path: hit, join an identical in-flight forward, or
        // register a fresh entry the queued compute will fulfill.
        let mut cache_key = None;
        if let Some(cache) = &self.cache {
            let key = CacheKey::new(self.current_generation(), &window);
            match cache.lookup_or_register(&key, &tx) {
                Lookup::Hit(forecast) => {
                    self.stats.requests.fetch_add(1, Ordering::Relaxed);
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    if traced {
                        urcl_trace::counter_inc("serve.requests");
                        urcl_trace::counter_inc(&format!("serve.tenant.{}.requests", self.name));
                        urcl_trace::counter_inc(&format!("serve.tenant.{}.cache_hits", self.name));
                    }
                    let _ = tx.send(Ok(forecast));
                    return Ok(PendingForecast::new(rx));
                }
                Lookup::Joined => {
                    self.stats.requests.fetch_add(1, Ordering::Relaxed);
                    self.stats.dedup_joins.fetch_add(1, Ordering::Relaxed);
                    if traced {
                        urcl_trace::counter_inc("serve.requests");
                        urcl_trace::counter_inc(&format!("serve.tenant.{}.requests", self.name));
                        urcl_trace::counter_inc(&format!("serve.tenant.{}.dedup_joins", self.name));
                    }
                    return Ok(PendingForecast::new(rx));
                }
                Lookup::Registered => {
                    self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
                    if traced {
                        urcl_trace::counter_inc(&format!("serve.tenant.{}.cache_misses", self.name));
                    }
                    cache_key = Some(key);
                }
            }
        }

        // Route: either a full sweep from the round-robin cursor, or a
        // single strict-affinity probe. Each shard's drain flag and depth
        // bound are checked under that shard's own lock — there is no
        // cross-shard lock.
        let n = self.shards.len();
        let (start, probes) = match route {
            Route::Sweep => (self.router.fetch_add(1, Ordering::Relaxed), n),
            // Strict affinity: one shard, no spillover. An overloaded
            // keyed shard sheds even while siblings have room — work
            // stealing, not the submit path, is what rebalances it.
            Route::Affine(key) => ((key % n as u64) as usize, 1),
        };
        let mut pending = Pending {
            window,
            enqueued: Instant::now(),
            tx,
            cache_key: cache_key.clone(),
        };
        let mut any_open = false;
        let mut fullest = 0usize;
        for i in 0..probes {
            let idx = (start + i) % n;
            match self.shards[idx].try_submit(pending) {
                Ok(depth) => {
                    self.stats.requests.fetch_add(1, Ordering::Relaxed);
                    if traced {
                        urcl_trace::counter_inc("serve.requests");
                        urcl_trace::counter_inc(&format!("serve.tenant.{}.requests", self.name));
                        urcl_trace::gauge_set(
                            &format!("serve.tenant.{}.shard{idx}.queue_depth", self.name),
                            depth as f64,
                        );
                    }
                    return Ok(PendingForecast::new(rx));
                }
                Err(Rejected::Full(p, depth)) => {
                    pending = p;
                    any_open = true;
                    fullest = fullest.max(depth);
                }
                Err(Rejected::Draining(p)) => pending = p,
            }
        }
        let err = if any_open {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            if traced {
                urcl_trace::counter_inc("serve.shed");
                urcl_trace::counter_inc(&format!("serve.tenant.{}.shed", self.name));
            }
            ServeError::Shed {
                tenant: self.name.clone(),
                depth: fullest,
            }
        } else {
            ServeError::ShuttingDown
        };
        if let (Some(cache), Some(key)) = (&self.cache, &cache_key) {
            cache.abort(key, &err);
        }
        Err(err)
    }

    fn reload(&self, force: bool) -> Result<bool, ServeError> {
        let fingerprint = self.source.fingerprint();
        if !force && fingerprint.is_some() && *lock(&self.fingerprint) == fingerprint {
            return Ok(false);
        }
        let _sp = urcl_trace::span("serve_reload");
        let loaded = self.source.load().and_then(|ckpt| {
            let generation = self.generation.load(Ordering::Relaxed) + 1;
            ModelSnapshot::from_checkpoint(&ckpt, &self.template, generation)
                .map_err(|e| urcl_core::PersistError::Format(e.to_string()))
        });
        match loaded {
            Ok(snapshot) => {
                let generation = snapshot.generation();
                self.generation.store(generation, Ordering::Relaxed);
                *lock(&self.snapshot) = Some(Arc::new(snapshot));
                *lock(&self.fingerprint) = fingerprint;
                if let Some(cache) = &self.cache {
                    // Forecasts from older snapshots must never be
                    // served again; in-flight entries survive so their
                    // queued computes still fan out.
                    cache.retain_generation(generation);
                }
                self.stats.swaps.fetch_add(1, Ordering::Relaxed);
                if urcl_trace::enabled() {
                    urcl_trace::counter_inc("serve.swaps");
                    urcl_trace::counter_inc(&format!("serve.tenant.{}.swaps", self.name));
                }
                Ok(true)
            }
            Err(e) => {
                // Remember the torn/bad fingerprint so the poller does
                // not retry identical bytes every tick; the old snapshot
                // keeps serving.
                *lock(&self.fingerprint) = fingerprint;
                self.stats.reload_failures.fetch_add(1, Ordering::Relaxed);
                if urcl_trace::enabled() {
                    urcl_trace::counter_inc("serve.reload_failures");
                    urcl_trace::counter_inc(&format!(
                        "serve.tenant.{}.reload_failures",
                        self.name
                    ));
                }
                Err(ServeError::Reload(e.to_string()))
            }
        }
    }

    fn stats(&self) -> TenantStats {
        TenantStats {
            requests: self.stats.requests.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
            max_batch: self.stats.max_batch_seen.load(Ordering::Relaxed),
            swaps: self.stats.swaps.load(Ordering::Relaxed),
            reload_failures: self.stats.reload_failures.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.stats.cache_misses.load(Ordering::Relaxed),
            dedup_joins: self.stats.dedup_joins.load(Ordering::Relaxed),
            steals: self.stats.steals.load(Ordering::Relaxed),
            stolen: self.stats.stolen.load(Ordering::Relaxed),
        }
    }
}

/// One attempt to steal a batch for an idle `thief` shard: scan the
/// siblings (starting just past the thief, so thieves spread over
/// victims) and take up to `max_batch` of the oldest requests from the
/// first one with a backlog. Returns `None` when no sibling is hot.
fn steal_batch(core: &TenantCore, thief: usize) -> Option<Vec<Pending>> {
    let n = core.shards.len();
    for off in 1..n {
        let victim = (thief + off) % n;
        let stolen = core.shards[victim].try_steal(core.config.policy.max_batch, STEAL_MIN_DEPTH);
        if !stolen.is_empty() {
            core.stats.steals.fetch_add(1, Ordering::Relaxed);
            core.stats
                .stolen
                .fetch_add(stolen.len() as u64, Ordering::Relaxed);
            if urcl_trace::enabled() {
                urcl_trace::counter_inc("serve.steals");
                urcl_trace::counter_add("serve.stolen_requests", stolen.len() as u64);
                urcl_trace::counter_inc(&format!("serve.tenant.{}.steals", core.name));
                urcl_trace::counter_add(
                    &format!("serve.tenant.{}.stolen_requests", core.name),
                    stolen.len() as u64,
                );
            }
            return Some(stolen);
        }
    }
    None
}

/// The per-shard worker: batch under the policy, forward, reply — and,
/// when its own queue is empty, steal a hot sibling's backlog instead of
/// sleeping ([`steal_batch`]).
fn worker_loop(core: &TenantCore, shard_idx: usize) {
    let shard = &core.shards[shard_idx];
    let stealing = core.config.steal && core.shards.len() > 1;
    'serve: loop {
        let batch = {
            let mut st = shard.lock();
            // Idle: wait for a request; exit only on "draining AND
            // empty", both observed under the lock. Between waits, an
            // empty queue is an invitation to steal: the lock is dropped,
            // a hot sibling is drained, and the stolen batch runs here.
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                let draining = st.draining;
                if stealing {
                    drop(st);
                    if let Some(stolen) = steal_batch(core, shard_idx) {
                        run_batch(core, stolen);
                        continue 'serve;
                    }
                    st = shard.lock();
                    if !st.queue.is_empty() {
                        break;
                    }
                    // Safe even if siblings still hold work below the
                    // steal threshold: every queue is drained by its own
                    // worker before that worker exits — stealing is pure
                    // acceleration, never a responsibility transfer.
                    if st.draining {
                        return;
                    }
                } else if draining {
                    return;
                }
                st = shard
                    .notify
                    .wait_timeout(st, IDLE_TICK)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
            // Coalesce: hold the batch open until it fills or the oldest
            // request's delay budget runs out; draining closes it early.
            let policy = core.config.policy;
            let deadline = st.queue.front().expect("non-empty").enqueued + policy.max_delay;
            while st.queue.len() < policy.max_batch && !st.draining {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = shard
                    .notify
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            let take = st.queue.len().min(policy.max_batch);
            let batch: Vec<Pending> = st.queue.drain(..take).collect();
            if urcl_trace::enabled() {
                urcl_trace::gauge_set(
                    &format!("serve.tenant.{}.shard{shard_idx}.queue_depth", core.name),
                    st.queue.len() as f64,
                );
            }
            batch
        };
        // A thief can empty this queue while the coalescing wait holds no
        // lock; an empty batch just means the work is running elsewhere.
        if !batch.is_empty() {
            run_batch(core, batch);
        }
    }
}

fn run_batch(core: &TenantCore, batch: Vec<Pending>) {
    let _sp = urcl_trace::span("serve_batch");
    let traced = urcl_trace::enabled();
    core.stats.batches.fetch_add(1, Ordering::Relaxed);
    core.stats
        .max_batch_seen
        .fetch_max(batch.len() as u64, Ordering::Relaxed);
    if traced {
        urcl_trace::counter_inc("serve.batches");
        urcl_trace::counter_inc(&format!("serve.tenant.{}.batches", core.name));
        urcl_trace::histogram_record("serve.batch_size", batch.len() as f64);
        urcl_trace::histogram_record(
            &format!("serve.tenant.{}.batch_size", core.name),
            batch.len() as f64,
        );
    }

    // Capture the snapshot once for the whole batch: a hot-swap between
    // batches never splits one batch across two snapshots, and holding
    // the Arc keeps the old snapshot alive until these replies are out.
    let snapshot = lock(&core.snapshot).clone();
    let Some(snapshot) = snapshot else {
        for pending in batch {
            let err = Err(ServeError::NoSnapshot);
            if let (Some(cache), Some(key)) = (&core.cache, &pending.cache_key) {
                cache.fulfill(key, &err);
            }
            let _ = pending.tx.send(err);
        }
        return;
    };

    let mut windows = Vec::with_capacity(batch.len());
    let mut replies = Vec::with_capacity(batch.len());
    for pending in batch {
        windows.push(pending.window);
        replies.push((pending.enqueued, pending.tx, pending.cache_key));
    }
    let _fast = core
        .config
        .fast_activations
        .then(urcl_tensor::FastActGuard::enable);
    let predictions = forward_batch(
        core.model.as_ref(),
        &snapshot,
        &windows,
        core.config.target_channel,
    );
    for ((enqueued, tx, cache_key), prediction) in replies.into_iter().zip(predictions) {
        if traced {
            let elapsed = enqueued.elapsed().as_secs_f64();
            urcl_trace::histogram_record("serve.latency_seconds", elapsed);
            urcl_trace::histogram_record(
                &format!("serve.tenant.{}.latency_seconds", core.name),
                elapsed,
            );
        }
        let result = Ok(Forecast {
            prediction,
            generation: snapshot.generation(),
        });
        if let (Some(cache), Some(key)) = (&core.cache, &cache_key) {
            cache.fulfill(key, &result);
        }
        let _ = tx.send(result);
    }
}

fn reload_loop(core: &TenantCore, interval: Duration) {
    let mut next = Instant::now() + interval;
    while !core.stopping.load(Ordering::Acquire) {
        std::thread::sleep(IDLE_TICK.min(interval));
        if Instant::now() < next {
            continue;
        }
        next = Instant::now() + interval;
        // Failures are counted and traced; the poller just keeps trying.
        let _ = core.reload(false);
    }
}

/// A cheap, clonable handle for submitting requests to one tenant
/// without touching the registry. Handles stay safe after the tenant is
/// drained — submits then return [`ServeError::ShuttingDown`].
#[derive(Clone)]
pub struct TenantClient {
    core: Arc<TenantCore>,
}

impl TenantClient {
    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// Enqueues one `[M, N, C]` physical-unit window; see
    /// [`crate::Server::submit`].
    pub fn submit(&self, window: Tensor) -> Result<PendingForecast, ServeError> {
        self.core.submit(window, Route::Sweep)
    }

    /// Enqueues one window with **strict shard affinity**: only shard
    /// `key % shards` is probed, with no spillover to siblings. Requests
    /// sharing a key therefore serialize through one queue (useful for
    /// per-sensor or per-upstream locality), at the price that an
    /// overloaded keyed shard sheds with [`ServeError::Shed`] even while
    /// sibling queues have room. With [`crate::ServeConfig::steal`]
    /// enabled (the default), idle sibling workers drain the hot keyed
    /// queue from the consumption side instead, which restores most of
    /// the lost capacity — the steal-duel cell in `bench_serve` measures
    /// exactly this.
    pub fn submit_affine(
        &self,
        key: u64,
        window: Tensor,
    ) -> Result<PendingForecast, ServeError> {
        self.core.submit(window, Route::Affine(key))
    }

    /// [`TenantClient::submit_affine`] followed by a blocking wait.
    pub fn predict_affine(&self, key: u64, window: &Tensor) -> Result<Forecast, ServeError> {
        self.submit_affine(key, window.clone())?.wait()
    }

    /// Submits one window and blocks for its forecast.
    pub fn predict(&self, window: &Tensor) -> Result<Forecast, ServeError> {
        self.submit(window.clone())?.wait()
    }

    /// Submits a burst and blocks for every forecast, in order.
    pub fn predict_many(&self, windows: &[Tensor]) -> Result<Vec<Forecast>, ServeError> {
        let handles: Vec<PendingForecast> = windows
            .iter()
            .map(|w| self.submit(w.clone()))
            .collect::<Result<_, _>>()?;
        handles.into_iter().map(PendingForecast::wait).collect()
    }

    /// Hot-swaps this tenant's snapshot if its trainer published a new
    /// checkpoint; see [`crate::Server::reload_now`].
    pub fn reload_now(&self) -> Result<bool, ServeError> {
        self.core.reload(false)
    }

    /// Whether a snapshot is loaded.
    pub fn has_snapshot(&self) -> bool {
        lock(&self.core.snapshot).is_some()
    }

    /// The currently serving snapshot (if any); the `Arc` stays valid
    /// across hot-swaps.
    pub fn snapshot(&self) -> Option<Arc<ModelSnapshot>> {
        lock(&self.core.snapshot).clone()
    }

    /// Generation of the current snapshot, `None` before the first load.
    pub fn generation(&self) -> Option<u64> {
        lock(&self.core.snapshot).as_ref().map(|s| s.generation())
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> TenantStats {
        self.core.stats()
    }

    /// The `[M, N, C]` window geometry requests must match.
    pub fn input_shape(&self) -> [usize; 3] {
        self.core.input_shape()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.core.shards.len()
    }

    /// Current per-shard queue depths (diagnostics).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.core.shards.iter().map(|s| s.depth()).collect()
    }

    /// Deepest queue depth each shard has seen; never exceeds the
    /// configured `queue_bound` (property-tested).
    pub fn peak_queue_depths(&self) -> Vec<usize> {
        self.core.shards.iter().map(|s| s.peak_depth()).collect()
    }

    /// Completed forecasts currently held by the response cache.
    pub fn cached_len(&self) -> usize {
        self.core.cache.as_ref().map_or(0, |c| c.len())
    }
}

/// One running tenant: the core plus its worker/reloader threads.
/// Dropping it drains every shard (queued requests are answered first)
/// and joins all threads.
pub(crate) struct TenantRuntime {
    core: Arc<TenantCore>,
    workers: Vec<JoinHandle<()>>,
    reloader: Option<JoinHandle<()>>,
}

impl TenantRuntime {
    pub(crate) fn start(
        name: &str,
        model: Box<dyn Backbone + Send + Sync>,
        template: ParamStore,
        source: CheckpointDir,
        config: ServeConfig,
    ) -> Self {
        assert!(config.policy.max_batch > 0, "max_batch must be positive");
        assert!(config.shards > 0, "shards must be positive");
        let core = Arc::new(TenantCore {
            name: name.to_string(),
            model,
            template,
            source,
            snapshot: Mutex::new(None),
            fingerprint: Mutex::new(None),
            shards: (0..config.shards)
                .map(|_| Shard::new(config.queue_bound))
                .collect(),
            router: AtomicUsize::new(0),
            cache: config.cache.map(ResponseCache::new),
            stopping: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            stats: Counters::default(),
            config,
        });
        // Best-effort initial load: an empty or unreadable directory just
        // means the tenant's trainer hasn't published yet.
        let _ = core.reload(true);
        let workers = (0..core.config.shards)
            .map(|idx| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("urcl-serve-{name}-s{idx}"))
                    .spawn(move || worker_loop(&core, idx))
                    .expect("spawn serve shard worker")
            })
            .collect();
        let reloader = core.config.reload_interval.map(|interval| {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name(format!("urcl-serve-{name}-reload"))
                .spawn(move || reload_loop(&core, interval))
                .expect("spawn serve reloader")
        });
        Self {
            core,
            workers,
            reloader,
        }
    }

    pub(crate) fn client(&self) -> TenantClient {
        TenantClient {
            core: Arc::clone(&self.core),
        }
    }

    /// Drains every shard and joins all threads (idempotent).
    pub(crate) fn shutdown(&mut self) {
        self.core.stopping.store(true, Ordering::Release);
        for shard in &self.core.shards {
            shard.drain();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(reloader) = self.reloader.take() {
            let _ = reloader.join();
        }
    }
}

impl Drop for TenantRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The multi-tenant registry: named tenants, each with its own shards,
/// snapshot, checkpoint source and (optional) cache.
///
/// The registry lock is only taken to add/remove/look up tenants —
/// never on the request path of a [`TenantClient`], which holds its
/// tenant directly. [`Tenants::predict`]-style convenience methods take
/// one brief read lock to resolve the name.
///
/// Dropping the registry drains every tenant: queued requests are
/// answered, later submits fail with [`ServeError::ShuttingDown`].
#[derive(Default)]
pub struct Tenants {
    map: RwLock<BTreeMap<String, TenantRuntime>>,
}

impl Tenants {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers and starts a tenant. `model` is the backbone
    /// *architecture* (weights come from `source` checkpoints) and
    /// `template` the parameter layout they must match, exactly as in
    /// [`crate::Server::start`]. Fails with [`ServeError::TenantExists`]
    /// if the name is taken.
    pub fn add(
        &self,
        name: &str,
        model: impl Backbone + Send + Sync + 'static,
        template: ParamStore,
        source: CheckpointDir,
        config: ServeConfig,
    ) -> Result<TenantClient, ServeError> {
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        if map.contains_key(name) {
            return Err(ServeError::TenantExists(name.to_string()));
        }
        let runtime = TenantRuntime::start(name, Box::new(model), template, source, config);
        let client = runtime.client();
        map.insert(name.to_string(), runtime);
        Ok(client)
    }

    /// Drains and removes a tenant (blocking until its queued requests
    /// are answered and its threads joined). Returns `false` if the name
    /// is unknown.
    pub fn remove(&self, name: &str) -> bool {
        let runtime = self
            .map
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
        // Dropped outside the write lock so a long drain doesn't block
        // other tenants' lookups.
        runtime.is_some()
    }

    /// A request handle for one tenant.
    pub fn client(&self, name: &str) -> Result<TenantClient, ServeError> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(TenantRuntime::client)
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }

    /// Enqueues one window for `tenant`.
    pub fn submit(&self, tenant: &str, window: Tensor) -> Result<PendingForecast, ServeError> {
        self.client(tenant)?.submit(window)
    }

    /// Submits one window to `tenant` and blocks for the forecast.
    pub fn predict(&self, tenant: &str, window: &Tensor) -> Result<Forecast, ServeError> {
        self.client(tenant)?.predict(window)
    }

    /// Submits a burst to `tenant` and blocks for every forecast.
    pub fn predict_many(
        &self,
        tenant: &str,
        windows: &[Tensor],
    ) -> Result<Vec<Forecast>, ServeError> {
        self.client(tenant)?.predict_many(windows)
    }

    /// Hot-swaps one tenant's snapshot from its checkpoint directory.
    pub fn reload_now(&self, tenant: &str) -> Result<bool, ServeError> {
        self.client(tenant)?.reload_now()
    }

    /// Checks every tenant's checkpoint directory; returns how many
    /// tenants swapped.
    pub fn reload_all(&self) -> usize {
        let clients: Vec<TenantClient> = {
            let map = self.map.read().unwrap_or_else(|e| e.into_inner());
            map.values().map(TenantRuntime::client).collect()
        };
        clients
            .iter()
            .filter(|c| matches!(c.reload_now(), Ok(true)))
            .count()
    }

    /// Counters for one tenant.
    pub fn stats(&self, tenant: &str) -> Result<TenantStats, ServeError> {
        Ok(self.client(tenant)?.stats())
    }

    /// Field-wise sum of every tenant's counters.
    pub fn aggregate_stats(&self) -> TenantStats {
        let map = self.map.read().unwrap_or_else(|e| e.into_inner());
        map.values()
            .map(|rt| rt.core.stats())
            .fold(TenantStats::default(), |acc, s| acc.merge(&s))
    }

    /// Registered tenant names (sorted).
    pub fn names(&self) -> Vec<String> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.map.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
