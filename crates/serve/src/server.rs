//! The batching server: request queue, coalescing worker, hot-swap.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use urcl_core::persist::{CheckpointDir, CheckpointFingerprint};
use urcl_models::Backbone;
use urcl_tensor::autodiff::{Session, Tape};
use urcl_tensor::Tensor;

use crate::snapshot::ModelSnapshot;

/// How long the idle worker sleeps between shutdown checks when the
/// queue is empty (requests interrupt it immediately via the condvar).
const IDLE_TICK: Duration = Duration::from_millis(25);

/// Request-coalescing policy.
///
/// When a request arrives on an idle server, the worker holds the batch
/// open for up to `max_delay`, hoping concurrent requests fill it to
/// `max_batch`; whichever limit is hit first closes the batch. A single
/// sparse client therefore pays at most `max_delay` extra latency, while
/// a busy one amortizes the per-forward fixed costs across up to
/// `max_batch` windows.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Largest number of requests fused into one forward pass.
    pub max_batch: usize,
    /// Longest a batch is held open waiting to fill.
    pub max_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Request-coalescing policy.
    pub policy: BatchPolicy,
    /// Which input channel the forecasts denormalize as (the dataset's
    /// `target_channel`).
    pub target_channel: usize,
    /// When set, a background thread polls the checkpoint directory at
    /// this interval and hot-swaps the snapshot whenever the trainer has
    /// published a new checkpoint ([`CheckpointDir::fingerprint`] makes
    /// the no-change case a single `stat` call). `None` leaves reloads to
    /// explicit [`Server::reload_now`] calls.
    pub reload_interval: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            policy: BatchPolicy::default(),
            target_channel: 0,
            reload_interval: None,
        }
    }
}

/// Errors surfaced by the serving runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No checkpoint has been loaded yet — the trainer has not published
    /// one, or every reload so far failed.
    NoSnapshot,
    /// The request does not fit the model's geometry.
    BadRequest(String),
    /// A checkpoint reload failed; the previous snapshot (if any) is
    /// still serving.
    Reload(String),
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoSnapshot => write!(f, "no model snapshot loaded yet"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Reload(msg) => write!(f, "checkpoint reload failed: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One horizon forecast in physical units.
#[derive(Debug, Clone)]
pub struct Forecast {
    /// `[H, N]` predictions of the target channel, denormalized.
    pub prediction: Tensor,
    /// Generation of the [`ModelSnapshot`] that served this request —
    /// after a hot-swap, responses computed on the old snapshot are
    /// distinguishable from those on the new one.
    pub generation: u64,
}

/// A submitted request's reply handle (one-shot).
pub struct PendingForecast {
    rx: mpsc::Receiver<Result<Forecast, ServeError>>,
}

impl PendingForecast {
    /// Blocks until the batch containing this request has run.
    pub fn wait(self) -> Result<Forecast, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// Point-in-time serving statistics (atomic reads, no locks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted by [`Server::submit`].
    pub requests: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Largest batch fused so far (never exceeds the policy's
    /// `max_batch`).
    pub max_batch: u64,
    /// Successful snapshot hot-swaps.
    pub swaps: u64,
    /// Failed reload attempts (old snapshot kept serving).
    pub reload_failures: u64,
}

struct Pending {
    window: Tensor,
    enqueued: Instant,
    tx: mpsc::Sender<Result<Forecast, ServeError>>,
}

struct Shared<B> {
    model: B,
    template: urcl_tensor::ParamStore,
    source: CheckpointDir,
    policy: BatchPolicy,
    target_channel: usize,
    snapshot: Mutex<Option<Arc<ModelSnapshot>>>,
    fingerprint: Mutex<Option<CheckpointFingerprint>>,
    queue: Mutex<VecDeque<Pending>>,
    notify: Condvar,
    shutdown: AtomicBool,
    generation: AtomicU64,
    requests: AtomicU64,
    batches: AtomicU64,
    max_batch_seen: AtomicU64,
    swaps: AtomicU64,
    reload_failures: AtomicU64,
}

/// A batched inference server over one [`Backbone`].
///
/// The server owns a worker thread that drains the request queue under
/// the [`BatchPolicy`], and (optionally) a reload thread that follows a
/// trainer's [`CheckpointDir`]. Dropping the server shuts both down
/// gracefully: queued requests are completed first, and later
/// [`Server::submit`] calls fail with [`ServeError::ShuttingDown`].
pub struct Server<B: Backbone + Send + Sync + 'static> {
    shared: Arc<Shared<B>>,
    worker: Option<JoinHandle<()>>,
    reloader: Option<JoinHandle<()>>,
}

impl<B: Backbone + Send + Sync + 'static> Server<B> {
    /// Starts the server.
    ///
    /// `model` is the backbone *architecture* — its weights are ignored;
    /// every forward pass reads parameters from the current snapshot.
    /// `template` is the [`urcl_tensor::ParamStore`] the model was
    /// constructed against; it defines the layout checkpoints must match.
    /// If `source` already holds a loadable checkpoint it becomes the
    /// initial snapshot; otherwise the server starts empty and answers
    /// [`ServeError::NoSnapshot`] until a reload succeeds.
    pub fn start(
        model: B,
        template: urcl_tensor::ParamStore,
        source: CheckpointDir,
        config: ServeConfig,
    ) -> Self {
        assert!(config.policy.max_batch > 0, "max_batch must be positive");
        let shared = Arc::new(Shared {
            model,
            template,
            source,
            policy: config.policy,
            target_channel: config.target_channel,
            snapshot: Mutex::new(None),
            fingerprint: Mutex::new(None),
            queue: Mutex::new(VecDeque::new()),
            notify: Condvar::new(),
            shutdown: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch_seen: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
        });
        // Best-effort initial load: an empty or unreadable directory just
        // means the trainer hasn't published yet.
        let _ = reload(&shared, true);
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("urcl-serve-worker".into())
                .spawn(move || worker_loop(&shared))
                .expect("spawn serve worker")
        };
        let reloader = config.reload_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("urcl-serve-reload".into())
                .spawn(move || reload_loop(&shared, interval))
                .expect("spawn serve reloader")
        });
        Self {
            shared,
            worker: Some(worker),
            reloader,
        }
    }

    /// Enqueues one `[M, N, C]` physical-unit window and returns a reply
    /// handle. The window's geometry is validated eagerly; normalization
    /// happens inside the batch, with the snapshot that serves it.
    pub fn submit(&self, window: Tensor) -> Result<PendingForecast, ServeError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let cfg = self.shared.model.config();
        let expected = [cfg.input_steps, cfg.num_nodes, cfg.channels];
        if window.shape() != expected {
            return Err(ServeError::BadRequest(format!(
                "window shape {:?} does not match model geometry {:?} ([M, N, C])",
                window.shape(),
                expected
            )));
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = lock(&self.shared.queue);
            queue.push_back(Pending {
                window,
                enqueued: Instant::now(),
                tx,
            });
            urcl_trace::gauge_set("serve.queue_depth", queue.len() as f64);
        }
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        urcl_trace::counter_inc("serve.requests");
        self.shared.notify.notify_all();
        Ok(PendingForecast { rx })
    }

    /// Submits one window and blocks for its forecast.
    pub fn predict(&self, window: &Tensor) -> Result<Forecast, ServeError> {
        self.submit(window.clone())?.wait()
    }

    /// Submits a whole burst at once and blocks for every forecast, in
    /// order. Bursts larger than the policy's `max_batch` are simply
    /// split across consecutive batches by the worker.
    pub fn predict_many(&self, windows: &[Tensor]) -> Result<Vec<Forecast>, ServeError> {
        let handles: Vec<PendingForecast> = windows
            .iter()
            .map(|w| self.submit(w.clone()))
            .collect::<Result<_, _>>()?;
        handles.into_iter().map(PendingForecast::wait).collect()
    }

    /// Checks the checkpoint directory and hot-swaps the snapshot if the
    /// trainer has published a new checkpoint since the last reload.
    /// Returns `true` when a swap happened, `false` when the fingerprint
    /// was unchanged. In-flight batches finish on the old snapshot; the
    /// swap takes effect from the next batch. On failure the old snapshot
    /// keeps serving and the error is returned.
    pub fn reload_now(&self) -> Result<bool, ServeError> {
        reload(&self.shared, false)
    }

    /// Whether a snapshot is currently loaded.
    pub fn has_snapshot(&self) -> bool {
        lock(&self.shared.snapshot).is_some()
    }

    /// The currently serving snapshot (if any). The returned `Arc` stays
    /// valid across hot-swaps — exactly the guarantee in-flight batches
    /// rely on.
    pub fn snapshot(&self) -> Option<Arc<ModelSnapshot>> {
        lock(&self.shared.snapshot).clone()
    }

    /// Generation of the current snapshot, or `None` before the first
    /// successful load.
    pub fn generation(&self) -> Option<u64> {
        lock(&self.shared.snapshot).as_ref().map(|s| s.generation())
    }

    /// Point-in-time counters (requests, batches, swaps, failures).
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            max_batch: self.shared.max_batch_seen.load(Ordering::Relaxed),
            swaps: self.shared.swaps.load(Ordering::Relaxed),
            reload_failures: self.shared.reload_failures.load(Ordering::Relaxed),
        }
    }

    /// The model geometry requests must match (`[M, N, C]` windows).
    pub fn input_shape(&self) -> [usize; 3] {
        let cfg = self.shared.model.config();
        [cfg.input_steps, cfg.num_nodes, cfg.channels]
    }
}

impl<B: Backbone + Send + Sync + 'static> Drop for Server<B> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        if let Some(reloader) = self.reloader.take() {
            let _ = reloader.join();
        }
    }
}

/// Mutex lock that survives a poisoned peer (a panicking worker must not
/// wedge the whole server).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn reload<B>(shared: &Shared<B>, force: bool) -> Result<bool, ServeError> {
    let fingerprint = shared.source.fingerprint();
    if !force && fingerprint.is_some() && *lock(&shared.fingerprint) == fingerprint {
        return Ok(false);
    }
    let _sp = urcl_trace::span("serve_reload");
    let loaded = shared.source.load().and_then(|ckpt| {
        let generation = shared.generation.load(Ordering::Relaxed) + 1;
        ModelSnapshot::from_checkpoint(&ckpt, &shared.template, generation).map_err(|e| {
            urcl_core::PersistError::Format(e.to_string())
        })
    });
    match loaded {
        Ok(snapshot) => {
            shared.generation.store(snapshot.generation(), Ordering::Relaxed);
            *lock(&shared.snapshot) = Some(Arc::new(snapshot));
            *lock(&shared.fingerprint) = fingerprint;
            shared.swaps.fetch_add(1, Ordering::Relaxed);
            urcl_trace::counter_inc("serve.swaps");
            Ok(true)
        }
        Err(e) => {
            // Remember the torn/bad fingerprint so the poller does not
            // retry the identical bytes every tick, but keep serving the
            // old snapshot.
            *lock(&shared.fingerprint) = fingerprint;
            shared.reload_failures.fetch_add(1, Ordering::Relaxed);
            urcl_trace::counter_inc("serve.reload_failures");
            Err(ServeError::Reload(e.to_string()))
        }
    }
}

fn reload_loop<B>(shared: &Shared<B>, interval: Duration) {
    let mut next = Instant::now() + interval;
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(IDLE_TICK.min(interval));
        if Instant::now() < next {
            continue;
        }
        next = Instant::now() + interval;
        // Failures are counted and traced; the poller just keeps trying.
        let _ = reload(shared, false);
    }
}

fn worker_loop<B: Backbone>(shared: &Shared<B>) {
    loop {
        let batch = {
            let mut queue = lock(&shared.queue);
            // Idle: wait for a request (or shutdown once drained).
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .notify
                    .wait_timeout(queue, IDLE_TICK)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
            // Coalesce: hold the batch open until it fills or the oldest
            // request's delay budget runs out. Shutdown closes it early.
            let deadline = queue.front().expect("non-empty").enqueued + shared.policy.max_delay;
            while queue.len() < shared.policy.max_batch
                && !shared.shutdown.load(Ordering::Acquire)
            {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = shared
                    .notify
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            let take = queue.len().min(shared.policy.max_batch);
            let batch: Vec<Pending> = queue.drain(..take).collect();
            urcl_trace::gauge_set("serve.queue_depth", queue.len() as f64);
            batch
        };
        run_batch(shared, batch);
    }
}

fn run_batch<B: Backbone>(shared: &Shared<B>, batch: Vec<Pending>) {
    let _sp = urcl_trace::span("serve_batch");
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .max_batch_seen
        .fetch_max(batch.len() as u64, Ordering::Relaxed);
    urcl_trace::counter_inc("serve.batches");
    urcl_trace::histogram_record("serve.batch_size", batch.len() as f64);

    // Capture the snapshot once for the whole batch: a hot-swap between
    // batches never splits one batch across two snapshots, and holding
    // the Arc keeps the old snapshot alive until these replies are out.
    let snapshot = lock(&shared.snapshot).clone();
    let Some(snapshot) = snapshot else {
        for pending in batch {
            let _ = pending.tx.send(Err(ServeError::NoSnapshot));
        }
        return;
    };

    let mut windows = Vec::with_capacity(batch.len());
    let mut replies = Vec::with_capacity(batch.len());
    for pending in batch {
        windows.push(pending.window);
        replies.push((pending.enqueued, pending.tx));
    }
    let predictions = forward_batch(&shared.model, &snapshot, &windows, shared.target_channel);
    for ((enqueued, tx), prediction) in replies.into_iter().zip(predictions) {
        urcl_trace::histogram_record(
            "serve.latency_seconds",
            enqueued.elapsed().as_secs_f64(),
        );
        let _ = tx.send(Ok(Forecast {
            prediction,
            generation: snapshot.generation(),
        }));
    }
}

/// Forward-only inference for a batch of raw `[M, N, C]` physical-unit
/// windows on one snapshot: normalize, stack into `[B, M, N, C]`, run one
/// forward pass, split into per-window `[H, N]` forecasts and denormalize
/// the target channel.
///
/// This is the exact computation the [`Server`] worker performs per
/// batch, exposed so the batching invariant is testable in isolation:
/// because the tensor runtime only ever parallelizes over disjoint output
/// regions, a batched forward is **bitwise identical** to running each
/// window through a batch of one.
pub fn forward_batch<B: Backbone + ?Sized>(
    model: &B,
    snapshot: &ModelSnapshot,
    windows: &[Tensor],
    target_channel: usize,
) -> Vec<Tensor> {
    if windows.is_empty() {
        return Vec::new();
    }
    let cfg = model.config();
    let (m, n, c) = (cfg.input_steps, cfg.num_nodes, cfg.channels);
    let norm = snapshot.normalizer();
    let mut data = Vec::with_capacity(windows.len() * m * n * c);
    for window in windows {
        data.extend_from_slice(norm.transform(window).data());
    }
    let x = Tensor::from_vec(data, &[windows.len(), m, n, c]);

    let tape = Tape::new();
    let mut sess = Session::new(&tape, snapshot.store());
    let xv = sess.input(x);
    let pred = {
        let _sp = urcl_trace::span("serve_forward");
        model.forward(&mut sess, xv).value() // [B, H, N]
    };
    let (h, nodes) = (pred.shape()[1], pred.shape()[2]);
    (0..windows.len())
        .map(|i| {
            let yi = pred.narrow(0, i, 1).reshape(&[h, nodes]);
            norm.inverse_target(&yi, target_channel)
        })
        .collect()
}
