//! Shared serving types, the single-tenant [`Server`] facade, and the
//! batched forward pass.
//!
//! The runtime itself (shards, workers, admission control, hot-swap) lives
//! in [`crate::tenant`]; `Server` is a one-tenant convenience wrapper over
//! the same machinery, so a single-model deployment and a [`crate::Tenants`]
//! registry exercise identical code paths.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use urcl_core::persist::CheckpointDir;
use urcl_models::Backbone;
use urcl_tensor::autodiff::{Session, Tape};
use urcl_tensor::{ParamStore, Tensor};

use crate::cache::CachePolicy;
use crate::snapshot::ModelSnapshot;
use crate::tenant::{TenantClient, TenantRuntime, TenantStats};

/// Request-coalescing policy.
///
/// When a request arrives on an idle shard, the worker holds the batch
/// open for up to `max_delay`, hoping concurrent requests fill it to
/// `max_batch`; whichever limit is hit first closes the batch. A single
/// sparse client therefore pays at most `max_delay` extra latency, while
/// a busy one amortizes the per-forward fixed costs across up to
/// `max_batch` windows.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Largest number of requests fused into one forward pass.
    pub max_batch: usize,
    /// Longest a batch is held open waiting to fill.
    pub max_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Per-tenant serving configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Request-coalescing policy (applied per shard).
    pub policy: BatchPolicy,
    /// Which input channel the forecasts denormalize as (the dataset's
    /// `target_channel`).
    pub target_channel: usize,
    /// When set, a background thread polls the checkpoint directory at
    /// this interval and hot-swaps the snapshot whenever the trainer has
    /// published a new checkpoint ([`CheckpointDir::fingerprint`] makes
    /// the no-change case a single `stat` call). `None` leaves reloads to
    /// explicit [`Server::reload_now`] calls.
    pub reload_interval: Option<Duration>,
    /// Number of independent shards (queue + worker thread each). Requests
    /// are routed round-robin; shards never share a lock, so on multi-core
    /// hosts they batch and forward concurrently. Defaults to the host's
    /// available parallelism.
    pub shards: usize,
    /// Admission bound per shard queue. When every shard is at its bound,
    /// submits fail fast with [`ServeError::Shed`] instead of queueing
    /// unboundedly. Defaults to 1024.
    pub queue_bound: usize,
    /// Optional response cache with in-flight deduplication: forecasts are
    /// memoized by `(snapshot generation, window bits)` — exact, because a
    /// forecaster is a pure function of those — and identical concurrent
    /// requests share one forward. `None` (the default) disables caching.
    pub cache: Option<CachePolicy>,
    /// Use the fast `tanh` kernel (exp-identity, ≤ 5e-7 absolute error)
    /// for forwards on this tenant. Off by default so serving stays
    /// bitwise identical to the trainer's own evaluation; benchmarks and
    /// throughput-first deployments opt in. Scoped to the serving
    /// forwards — training in the same process is never affected.
    pub fast_activations: bool,
    /// Cross-shard work stealing (on by default): a shard worker whose
    /// own queue is empty drains up to `max_batch` of the oldest requests
    /// from a hot sibling's queue and runs them as its own batch, instead
    /// of sleeping while the sibling's backlog grows. Admission control,
    /// the drain protocol and response bits are all unchanged — stealing
    /// moves only already-admitted requests, every stolen request is
    /// processed immediately by the thief, and batched forwards are
    /// bitwise independent of batch composition (DESIGN.md §15).
    pub steal: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            policy: BatchPolicy::default(),
            target_channel: 0,
            reload_interval: None,
            shards: urcl_tensor::host_parallelism(),
            queue_bound: 1024,
            cache: None,
            fast_activations: false,
            steal: true,
        }
    }
}

/// Errors surfaced by the serving runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No checkpoint has been loaded yet — the trainer has not published
    /// one, or every reload so far failed.
    NoSnapshot,
    /// The request does not fit the model's geometry.
    BadRequest(String),
    /// A checkpoint reload failed; the previous snapshot (if any) is
    /// still serving.
    Reload(String),
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// Admission control rejected the request: every shard queue of the
    /// tenant was at its bound. `depth` is the deepest queue observed
    /// during the routing sweep. Typed backpressure — callers decide
    /// whether to retry, downsample, or surface the overload.
    Shed {
        /// Tenant that shed the request.
        tenant: String,
        /// Deepest shard queue observed at rejection time.
        depth: usize,
    },
    /// No tenant with that name is registered.
    UnknownTenant(String),
    /// A tenant with that name is already registered.
    TenantExists(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoSnapshot => write!(f, "no model snapshot loaded yet"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Reload(msg) => write!(f, "checkpoint reload failed: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Shed { tenant, depth } => write!(
                f,
                "request shed: tenant {tenant:?} at admission bound (queue depth {depth})"
            ),
            ServeError::UnknownTenant(name) => write!(f, "unknown tenant {name:?}"),
            ServeError::TenantExists(name) => write!(f, "tenant {name:?} already registered"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One horizon forecast in physical units.
#[derive(Debug, Clone)]
pub struct Forecast {
    /// `[H, N]` predictions of the target channel, denormalized.
    pub prediction: Tensor,
    /// Generation of the [`ModelSnapshot`] that served this request —
    /// after a hot-swap, responses computed on the old snapshot are
    /// distinguishable from those on the new one.
    pub generation: u64,
}

/// A submitted request's reply handle (one-shot).
pub struct PendingForecast {
    rx: mpsc::Receiver<Result<Forecast, ServeError>>,
}

impl PendingForecast {
    pub(crate) fn new(rx: mpsc::Receiver<Result<Forecast, ServeError>>) -> Self {
        Self { rx }
    }

    /// Blocks until the batch containing this request has run.
    pub fn wait(self) -> Result<Forecast, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Blocks for at most `timeout`; `None` means the reply has not
    /// arrived yet (the handle is consumed — watchdog use, where a
    /// missing reply is itself the failure being tested).
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<Forecast, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Point-in-time serving statistics — for a single-tenant [`Server`]
/// these are the counters of its one tenant.
pub type ServerStats = TenantStats;

/// A sharded, batched inference server over one [`Backbone`] — the
/// single-tenant facade over the same runtime [`crate::Tenants`] uses.
///
/// The server owns `shards` worker threads that drain per-shard request
/// queues under the [`BatchPolicy`], and (optionally) a reload thread
/// that follows a trainer's [`CheckpointDir`]. Dropping the server shuts
/// everything down gracefully: queued requests are completed first, and
/// later [`Server::submit`] calls fail with [`ServeError::ShuttingDown`].
pub struct Server {
    // Field order is drop order: the runtime must drain before the
    // client handle goes away (either order is safe; this one is tidy).
    runtime: TenantRuntime,
    client: TenantClient,
}

impl Server {
    /// Starts the server.
    ///
    /// `model` is the backbone *architecture* — its weights are ignored;
    /// every forward pass reads parameters from the current snapshot.
    /// `template` is the [`ParamStore`] the model was constructed
    /// against; it defines the layout checkpoints must match. If `source`
    /// already holds a loadable checkpoint it becomes the initial
    /// snapshot; otherwise the server starts empty and answers
    /// [`ServeError::NoSnapshot`] until a reload succeeds.
    pub fn start(
        model: impl Backbone + Send + Sync + 'static,
        template: ParamStore,
        source: CheckpointDir,
        config: ServeConfig,
    ) -> Self {
        let runtime = TenantRuntime::start("default", Box::new(model), template, source, config);
        let client = runtime.client();
        Self { runtime, client }
    }

    /// A cheap clonable handle for submitting from other threads without
    /// borrowing the server.
    pub fn client(&self) -> TenantClient {
        self.runtime.client()
    }

    /// Enqueues one `[M, N, C]` physical-unit window and returns a reply
    /// handle. The window's geometry is validated eagerly; normalization
    /// happens inside the batch, with the snapshot that serves it.
    pub fn submit(&self, window: Tensor) -> Result<PendingForecast, ServeError> {
        self.client.submit(window)
    }

    /// Submits one window and blocks for its forecast.
    pub fn predict(&self, window: &Tensor) -> Result<Forecast, ServeError> {
        self.client.predict(window)
    }

    /// Submits a whole burst at once and blocks for every forecast, in
    /// order. Bursts larger than the policy's `max_batch` are simply
    /// split across consecutive batches by the workers.
    pub fn predict_many(&self, windows: &[Tensor]) -> Result<Vec<Forecast>, ServeError> {
        self.client.predict_many(windows)
    }

    /// Checks the checkpoint directory and hot-swaps the snapshot if the
    /// trainer has published a new checkpoint since the last reload.
    /// Returns `true` when a swap happened, `false` when the fingerprint
    /// was unchanged. In-flight batches finish on the old snapshot; the
    /// swap takes effect from the next batch. On failure the old snapshot
    /// keeps serving and the error is returned.
    pub fn reload_now(&self) -> Result<bool, ServeError> {
        self.client.reload_now()
    }

    /// Whether a snapshot is currently loaded.
    pub fn has_snapshot(&self) -> bool {
        self.client.has_snapshot()
    }

    /// The currently serving snapshot (if any). The returned `Arc` stays
    /// valid across hot-swaps — exactly the guarantee in-flight batches
    /// rely on.
    pub fn snapshot(&self) -> Option<Arc<ModelSnapshot>> {
        self.client.snapshot()
    }

    /// Generation of the current snapshot, or `None` before the first
    /// successful load.
    pub fn generation(&self) -> Option<u64> {
        self.client.generation()
    }

    /// Point-in-time counters (requests, sheds, batches, swaps, cache).
    pub fn stats(&self) -> ServerStats {
        self.client.stats()
    }

    /// The model geometry requests must match (`[M, N, C]` windows).
    pub fn input_shape(&self) -> [usize; 3] {
        self.client.input_shape()
    }
}

/// Forward-only inference for a batch of raw `[M, N, C]` physical-unit
/// windows on one snapshot: normalize, stack into `[B, M, N, C]`, run one
/// forward pass, split into per-window `[H, N]` forecasts and denormalize
/// the target channel.
///
/// This is the exact computation the serving workers perform per batch,
/// exposed so the batching invariant is testable in isolation: because
/// the tensor runtime only ever parallelizes over disjoint output
/// regions, a batched forward is **bitwise identical** to running each
/// window through a batch of one.
///
/// Activation kernels follow the calling thread's
/// [`urcl_tensor::FastActGuard`] state at record time, so a reference
/// forward for a [`ServeConfig::fast_activations`] tenant reproduces the
/// server bit for bit by wrapping this call in a guard.
pub fn forward_batch<B: Backbone + ?Sized>(
    model: &B,
    snapshot: &ModelSnapshot,
    windows: &[Tensor],
    target_channel: usize,
) -> Vec<Tensor> {
    if windows.is_empty() {
        return Vec::new();
    }
    let cfg = model.config();
    let (m, n, c) = (cfg.input_steps, cfg.num_nodes, cfg.channels);
    let norm = snapshot.normalizer();
    let mut data = Vec::with_capacity(windows.len() * m * n * c);
    for window in windows {
        norm.transform_into(window, &mut data);
    }
    let x = Tensor::from_vec(data, &[windows.len(), m, n, c]);

    // Replay the snapshot's compiled plan for this batch shape when the
    // plan engine is on (the default); re-record a tape otherwise. Both
    // paths produce identical bits — pinned by the hot-swap suite.
    let pred = if urcl_tensor::plan_enabled() {
        let plan = snapshot.forward_plan(model, &x);
        let _sp = urcl_trace::span("serve_forward");
        plan.run_forward(snapshot.store(), &[&x]).remove(0) // [B, H, N]
    } else {
        let tape = Tape::new();
        let mut sess = Session::new(&tape, snapshot.store());
        let xv = sess.input(x);
        let _sp = urcl_trace::span("serve_forward");
        model.forward(&mut sess, xv).value() // [B, H, N]
    };
    let (h, nodes) = (pred.shape()[1], pred.shape()[2]);
    (0..windows.len())
        .map(|i| {
            let yi = pred.narrow(0, i, 1).reshape(&[h, nodes]);
            norm.inverse_target(&yi, target_channel)
        })
        .collect()
}
