//! One server shard: a bounded request queue, its condition variable,
//! and the admission/drain protocol.
//!
//! Every shard is independent — its own mutex, its own condvar, its own
//! worker thread — so the request path never takes a lock shared across
//! shards, let alone across tenants. Admission control is a hard bound
//! on queue depth checked at submit time; a full shard rejects instead
//! of queueing unboundedly, and the router turns a full sweep of
//! rejections into a typed [`crate::ServeError::Shed`].
//!
//! ## Drain protocol (and the stranded-waiter bug it fixes)
//!
//! The single-queue server this design replaces kept its shutdown flag
//! in an `AtomicBool` that submitters checked *before* taking the queue
//! lock. That left a hole: a submitter could pass the check, lose the
//! race with shutdown, and push onto a queue whose worker had already
//! observed "empty + shutting down" and exited — stranding the waiter
//! forever. Here the drain flag lives *inside* the queue mutex:
//!
//! 1. `drain()` sets `draining = true` **under the lock**, then notifies.
//! 2. `try_submit` checks `draining` **under the same lock**; once the
//!    flag is up no request is ever admitted.
//! 3. The worker exits only after observing `draining && queue.is_empty()`
//!    **under the same lock**.
//!
//! Any submit that wins the race is therefore in the queue before the
//! flag is visible, and the worker drains it; any submit that loses gets
//! a typed `ShuttingDown`. `drain_interleavings.rs` enumerates seeded
//! schedules over exactly this race and asserts zero stranded waiters.
//!
//! ## Work stealing
//!
//! An idle shard worker may *steal* the oldest queued requests of a hot
//! sibling ([`Shard::try_steal`]) and run them as its own batch. Stealing
//! composes with both protocols above without new states:
//!
//! * **Admission** is untouched — a request is admitted (or shed) by the
//!   submit path exactly as before; stealing only moves *already
//!   admitted* requests between a queue and a running batch, so queue
//!   depths can only shrink and the per-shard bound still holds.
//! * **Drain** is untouched — a stolen request is processed immediately
//!   by the thief (never re-queued), so "every admitted request is
//!   answered" survives any interleaving of stealing with `drain()`.
//!   Stealing from a draining sibling is allowed and simply parallelizes
//!   the drain.
//! * **Determinism** is untouched — batched and solo forwards are
//!   bitwise identical (the tensor runtime never reorders reductions),
//!   so *which* worker serves a request, and in which batch composition,
//!   is unobservable in the response bits.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use urcl_tensor::Tensor;

use crate::cache::CacheKey;
use crate::server::{Forecast, ServeError};

/// One queued request.
pub(crate) struct Pending {
    pub window: Tensor,
    pub enqueued: Instant,
    pub tx: mpsc::Sender<Result<Forecast, ServeError>>,
    /// When set, the computing worker publishes the result into the
    /// tenant's response cache under this key (fanning out to any
    /// deduplicated waiters).
    pub cache_key: Option<CacheKey>,
}

pub(crate) struct ShardState {
    pub queue: VecDeque<Pending>,
    /// Set under the lock by [`Shard::drain`]; never cleared.
    pub draining: bool,
    /// Deepest the queue has ever been (property tests assert it never
    /// exceeds the configured bound).
    pub peak_depth: usize,
}

/// Why a submit was rejected; the request is handed back for the router
/// to try another shard.
pub(crate) enum Rejected {
    /// Queue at its admission bound; carries the observed depth.
    Full(Pending, usize),
    /// Shard is draining and admits nothing.
    Draining(Pending),
}

pub(crate) struct Shard {
    pub state: Mutex<ShardState>,
    pub notify: Condvar,
    pub bound: usize,
}

impl Shard {
    pub(crate) fn new(bound: usize) -> Self {
        assert!(bound > 0, "queue bound must be positive");
        Self {
            state: Mutex::new(ShardState {
                queue: VecDeque::new(),
                draining: false,
                peak_depth: 0,
            }),
            notify: Condvar::new(),
            bound,
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, ShardState> {
        // A panicking worker must not wedge the shard for submitters.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admission-controlled enqueue: the drain flag and the depth bound
    /// are both checked under the queue lock.
    pub(crate) fn try_submit(&self, pending: Pending) -> Result<usize, Rejected> {
        let mut st = self.lock();
        if st.draining {
            return Err(Rejected::Draining(pending));
        }
        let depth = st.queue.len();
        if depth >= self.bound {
            return Err(Rejected::Full(pending, depth));
        }
        st.queue.push_back(pending);
        let depth = st.queue.len();
        st.peak_depth = st.peak_depth.max(depth);
        drop(st);
        self.notify.notify_all();
        Ok(depth)
    }

    /// Raises the drain flag (under the lock) and wakes the worker. After
    /// this returns, no new request can be admitted; the worker finishes
    /// everything already queued, then exits.
    pub(crate) fn drain(&self) {
        self.lock().draining = true;
        self.notify.notify_all();
    }

    /// Steals up to `max` of the *oldest* queued requests for an idle
    /// sibling worker to run as its own batch. Returns an empty vector
    /// when the queue holds fewer than `min_depth` requests (a backlog
    /// that shallow is the owning worker's next batch anyway) or when the
    /// shard's lock is contended — a contended lock means the owner or
    /// another thief is already draining it, so the would-be thief just
    /// moves on instead of queueing behind them.
    ///
    /// Stealing from the front keeps service order FIFO per queue: the
    /// requests closest to their latency deadline leave first. A draining
    /// shard may be stolen from — its own worker exits on "draining and
    /// empty", and anything the thief takes is processed by the thief, so
    /// no admitted request is ever stranded.
    pub(crate) fn try_steal(&self, max: usize, min_depth: usize) -> Vec<Pending> {
        let Ok(mut st) = self.state.try_lock() else {
            return Vec::new();
        };
        if st.queue.len() < min_depth.max(1) {
            return Vec::new();
        }
        let take = st.queue.len().min(max);
        st.queue.drain(..take).collect()
    }

    /// Current queue depth (diagnostics).
    pub(crate) fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Deepest observed queue depth.
    pub(crate) fn peak_depth(&self) -> usize {
        self.lock().peak_depth
    }
}
