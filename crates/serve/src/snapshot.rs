//! Immutable model snapshots: the unit of hot-swap.

use std::sync::{Arc, Mutex};

use urcl_core::persist::{copy_store_checked, Checkpoint};
use urcl_models::Backbone;
use urcl_stdata::Normalizer;
use urcl_tensor::autodiff::{Session, Tape};
use urcl_tensor::{ExecPlan, ParamStore, PlanSpec, PolySpec, Tensor};

use crate::server::ServeError;

/// One immutable, self-contained serving state: trained parameters plus
/// the normalizer statistics that map physical units into the model's
/// normalized input space and back.
///
/// Snapshots are built from `urcl-ckpt-v2` checkpoints, validated against
/// the server's parameter-layout template, and shared behind an
/// [`std::sync::Arc`]: a hot-swap replaces which snapshot *new* batches
/// see, while any batch already holding the `Arc` finishes on the old
/// one. A snapshot is never mutated after construction.
pub struct ModelSnapshot {
    store: ParamStore,
    normalizer: Normalizer,
    description: String,
    generation: u64,
    /// Forward-only [`ExecPlan`]s compiled lazily and shared across every
    /// shard thread holding this snapshot. Plans are batch-polymorphic,
    /// so the first batch's compile serves every admission-controlled
    /// batch size; the list grows only if poly compilation degrades to
    /// mono for an architecture. Parameters are immutable for the
    /// snapshot's lifetime, so a plan never goes stale; it dies with the
    /// snapshot on hot-swap.
    plans: Mutex<Vec<Arc<ExecPlan>>>,
}

impl ModelSnapshot {
    /// Builds a snapshot from a loaded checkpoint.
    ///
    /// `template` supplies the expected parameter layout (the same
    /// architecture the server's backbone was constructed against); the
    /// checkpoint must match it exactly (count, names, shapes) and must
    /// carry normalizer statistics — i.e. be a full-pipeline (v2) save,
    /// not a params-only one.
    pub fn from_checkpoint(
        ckpt: &Checkpoint,
        template: &ParamStore,
        generation: u64,
    ) -> Result<Self, ServeError> {
        let normalizer = ckpt
            .normalizer()
            .ok_or_else(|| {
                ServeError::Reload(
                    "checkpoint carries no normalizer statistics (params-only save?)"
                        .to_string(),
                )
            })?
            .clone();
        let mut store = template.clone();
        copy_store_checked(&ckpt.store, &mut store)
            .map_err(|e| ServeError::Reload(e.to_string()))?;
        Ok(Self {
            store,
            normalizer,
            description: ckpt.description.clone(),
            generation,
            plans: Mutex::new(Vec::new()),
        })
    }

    /// Returns a forward-only plan accepting `x`, compiling on first
    /// sight. The compile records the forward pass twice (at `x`'s batch
    /// size and, over a zero proxy, at one more) and abstracts the batch
    /// dim, so one compiled plan replays at every batch size the batcher
    /// forms. `x` itself seeds the recording pass; only its shape matters.
    ///
    /// Activation-kernel selection (see
    /// [`urcl_tensor::FastActGuard`]) happens at *replay* time on the
    /// calling thread, exactly as the interpreter selects at record time,
    /// so one cached plan serves fast- and exact-activation callers with
    /// the same bits each would get from a fresh tape.
    pub fn forward_plan<B: Backbone + ?Sized>(&self, model: &B, x: &Tensor) -> Arc<ExecPlan> {
        let mut plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(plan) = plans.iter().find(|p| p.accepts(&[x])) {
            return Arc::clone(plan);
        }
        let _compile_sp = urcl_trace::span("plan_compile");
        let record = |x: &Tensor| {
            let tape = Tape::new();
            let (inputs, outputs, binds);
            {
                let mut sess = Session::new(&tape, &self.store);
                let xv = sess.input(x.clone());
                let pred = model.forward(&mut sess, xv);
                inputs = vec![xv.index()];
                outputs = vec![pred.index()];
                binds = sess.into_bindings();
            }
            (tape, inputs, outputs, binds)
        };
        let (tape0, inputs, outputs, binds) = record(x);
        let b0 = x.shape()[0];
        let mut xs = x.shape().to_vec();
        xs[0] = b0 + 1;
        let (tape1, _, _, _) = record(&Tensor::zeros(&xs));
        let plan = Arc::new(ExecPlan::compile(
            &tape0,
            &PlanSpec {
                root: None,
                inputs: &inputs,
                outputs: &outputs,
                bindings: &binds,
                poly: Some(PolySpec {
                    tape: &tape1,
                    batch0: b0,
                    batch1: b0 + 1,
                }),
            },
        ));
        plans.push(Arc::clone(&plan));
        plan
    }

    /// The trained parameters this snapshot serves with.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// The normalizer mapping physical units to model space and back.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// The checkpoint's free-form description (e.g. "after I3_set").
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Monotonic swap counter: each successful reload publishes a
    /// snapshot with a higher generation, so responses can be traced back
    /// to the checkpoint that produced them.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl std::fmt::Debug for ModelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSnapshot")
            .field("generation", &self.generation)
            .field("description", &self.description)
            .field("params", &self.store.len())
            .field("channels", &self.normalizer.num_channels())
            .finish()
    }
}
