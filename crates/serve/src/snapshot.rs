//! Immutable model snapshots: the unit of hot-swap.

use std::sync::{Arc, Mutex};

use urcl_core::persist::{copy_store_checked, Checkpoint};
use urcl_models::Backbone;
use urcl_stdata::Normalizer;
use urcl_tensor::autodiff::{Session, Tape};
use urcl_tensor::{ExecPlan, ParamStore, PlanSpec, Tensor};

use crate::server::ServeError;

/// One immutable, self-contained serving state: trained parameters plus
/// the normalizer statistics that map physical units into the model's
/// normalized input space and back.
///
/// Snapshots are built from `urcl-ckpt-v2` checkpoints, validated against
/// the server's parameter-layout template, and shared behind an
/// [`std::sync::Arc`]: a hot-swap replaces which snapshot *new* batches
/// see, while any batch already holding the `Arc` finishes on the old
/// one. A snapshot is never mutated after construction.
pub struct ModelSnapshot {
    store: ParamStore,
    normalizer: Normalizer,
    description: String,
    generation: u64,
    /// Forward-only [`ExecPlan`]s keyed by batched input shape, compiled
    /// lazily and shared across every shard thread holding this snapshot.
    /// Parameters are immutable for the snapshot's lifetime, so a plan
    /// never goes stale; it dies with the snapshot on hot-swap.
    plans: Mutex<Vec<(Vec<usize>, Arc<ExecPlan>)>>,
}

impl ModelSnapshot {
    /// Builds a snapshot from a loaded checkpoint.
    ///
    /// `template` supplies the expected parameter layout (the same
    /// architecture the server's backbone was constructed against); the
    /// checkpoint must match it exactly (count, names, shapes) and must
    /// carry normalizer statistics — i.e. be a full-pipeline (v2) save,
    /// not a params-only one.
    pub fn from_checkpoint(
        ckpt: &Checkpoint,
        template: &ParamStore,
        generation: u64,
    ) -> Result<Self, ServeError> {
        let normalizer = ckpt
            .normalizer()
            .ok_or_else(|| {
                ServeError::Reload(
                    "checkpoint carries no normalizer statistics (params-only save?)"
                        .to_string(),
                )
            })?
            .clone();
        let mut store = template.clone();
        copy_store_checked(&ckpt.store, &mut store)
            .map_err(|e| ServeError::Reload(e.to_string()))?;
        Ok(Self {
            store,
            normalizer,
            description: ckpt.description.clone(),
            generation,
            plans: Mutex::new(Vec::new()),
        })
    }

    /// Returns the forward-only plan for `x`'s shape, compiling it on
    /// first sight (the per-shape cost every subsequent batch of that
    /// shape amortizes away). `x` itself seeds the recording pass; only
    /// its shape keys the cache.
    ///
    /// Activation-kernel selection (see
    /// [`urcl_tensor::FastActGuard`]) happens at *replay* time on the
    /// calling thread, exactly as the interpreter selects at record time,
    /// so one cached plan serves fast- and exact-activation callers with
    /// the same bits each would get from a fresh tape.
    pub fn forward_plan<B: Backbone + ?Sized>(&self, model: &B, x: &Tensor) -> Arc<ExecPlan> {
        let mut plans = self.plans.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, plan)) = plans.iter().find(|(s, _)| s == x.shape()) {
            return Arc::clone(plan);
        }
        let _compile_sp = urcl_trace::span("plan_compile");
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &self.store);
        let xv = sess.input(x.clone());
        let pred = model.forward(&mut sess, xv);
        let binds = sess.into_bindings();
        let plan = Arc::new(ExecPlan::compile(
            &tape,
            &PlanSpec {
                root: None,
                inputs: &[xv.index()],
                outputs: &[pred.index()],
                bindings: &binds,
            },
        ));
        plans.push((x.shape().to_vec(), Arc::clone(&plan)));
        plan
    }

    /// The trained parameters this snapshot serves with.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// The normalizer mapping physical units to model space and back.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// The checkpoint's free-form description (e.g. "after I3_set").
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Monotonic swap counter: each successful reload publishes a
    /// snapshot with a higher generation, so responses can be traced back
    /// to the checkpoint that produced them.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl std::fmt::Debug for ModelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSnapshot")
            .field("generation", &self.generation)
            .field("description", &self.description)
            .field("params", &self.store.len())
            .field("channels", &self.normalizer.num_channels())
            .finish()
    }
}
