//! Immutable model snapshots: the unit of hot-swap.

use urcl_core::persist::{copy_store_checked, Checkpoint};
use urcl_stdata::Normalizer;
use urcl_tensor::ParamStore;

use crate::server::ServeError;

/// One immutable, self-contained serving state: trained parameters plus
/// the normalizer statistics that map physical units into the model's
/// normalized input space and back.
///
/// Snapshots are built from `urcl-ckpt-v2` checkpoints, validated against
/// the server's parameter-layout template, and shared behind an
/// [`std::sync::Arc`]: a hot-swap replaces which snapshot *new* batches
/// see, while any batch already holding the `Arc` finishes on the old
/// one. A snapshot is never mutated after construction.
pub struct ModelSnapshot {
    store: ParamStore,
    normalizer: Normalizer,
    description: String,
    generation: u64,
}

impl ModelSnapshot {
    /// Builds a snapshot from a loaded checkpoint.
    ///
    /// `template` supplies the expected parameter layout (the same
    /// architecture the server's backbone was constructed against); the
    /// checkpoint must match it exactly (count, names, shapes) and must
    /// carry normalizer statistics — i.e. be a full-pipeline (v2) save,
    /// not a params-only one.
    pub fn from_checkpoint(
        ckpt: &Checkpoint,
        template: &ParamStore,
        generation: u64,
    ) -> Result<Self, ServeError> {
        let normalizer = ckpt
            .normalizer()
            .ok_or_else(|| {
                ServeError::Reload(
                    "checkpoint carries no normalizer statistics (params-only save?)"
                        .to_string(),
                )
            })?
            .clone();
        let mut store = template.clone();
        copy_store_checked(&ckpt.store, &mut store)
            .map_err(|e| ServeError::Reload(e.to_string()))?;
        Ok(Self {
            store,
            normalizer,
            description: ckpt.description.clone(),
            generation,
        })
    }

    /// The trained parameters this snapshot serves with.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// The normalizer mapping physical units to model space and back.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// The checkpoint's free-form description (e.g. "after I3_set").
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Monotonic swap counter: each successful reload publishes a
    /// snapshot with a higher generation, so responses can be traced back
    /// to the checkpoint that produced them.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl std::fmt::Debug for ModelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSnapshot")
            .field("generation", &self.generation)
            .field("description", &self.description)
            .field("params", &self.store.len())
            .field("channels", &self.normalizer.num_channels())
            .finish()
    }
}
