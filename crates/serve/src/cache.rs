//! Snapshot-scoped response cache with in-flight request deduplication.
//!
//! A forecaster is a pure function of `(snapshot, window)`: two requests
//! for the same window against the same snapshot generation *must*
//! produce bitwise-identical forecasts (the invariant the serve test
//! suite pins). That makes memoization exact, not approximate — and in a
//! production traffic tier it is the dominant win, because millions of
//! users ask for forecasts over the *same* live sensor windows.
//!
//! Two mechanisms share one table:
//!
//! * **Response cache** — completed forecasts keyed by
//!   `(generation, window bits)`. Keys compare the *full* window
//!   bit-pattern (no hash-collision false hits). A hot-swap purges every
//!   entry from older generations, so a cache hit is always a forecast
//!   the current snapshot would recompute bit for bit.
//! * **In-flight dedup** — when a request misses but an identical
//!   request is already queued, the newcomer joins the in-flight entry's
//!   waiter list instead of enqueuing a second forward. One batched
//!   compute fans out to every waiter.
//!
//! Eviction is FIFO over completed entries, bounded by
//! [`CachePolicy::capacity`]; in-flight entries are never evicted (their
//! waiters must not be stranded) and are bounded by the admission
//! control's queue bounds instead.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::Mutex;

use urcl_tensor::Tensor;

use crate::server::{Forecast, ServeError};

/// Response-cache configuration (per tenant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePolicy {
    /// Maximum number of *completed* forecasts retained. In-flight dedup
    /// entries do not count against this bound.
    pub capacity: usize,
}

impl Default for CachePolicy {
    fn default() -> Self {
        Self { capacity: 4096 }
    }
}

/// Exact cache key: snapshot generation plus the full window bit-pattern.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    generation: u64,
    bits: Box<[u32]>,
}

impl CacheKey {
    pub(crate) fn new(generation: u64, window: &Tensor) -> Self {
        Self {
            generation,
            bits: window.data().iter().map(|v| v.to_bits()).collect(),
        }
    }
}

type Waiter = mpsc::Sender<Result<Forecast, ServeError>>;

enum Slot {
    /// A completed forecast; hits clone it.
    Ready(Forecast),
    /// A forward for this key is queued; these waiters get the result.
    InFlight(Vec<Waiter>),
}

struct Inner {
    map: HashMap<CacheKey, Slot>,
    /// FIFO eviction order over `Ready` keys.
    order: VecDeque<CacheKey>,
}

/// Outcome of [`ResponseCache::lookup_or_register`].
pub(crate) enum Lookup {
    /// Cached forecast delivered; nothing to enqueue.
    Hit(Forecast),
    /// Joined an identical in-flight request; nothing to enqueue.
    Joined,
    /// Registered a fresh in-flight entry; the caller must enqueue the
    /// compute (or [`ResponseCache::abort`] on admission failure).
    Registered,
}

pub(crate) struct ResponseCache {
    policy: CachePolicy,
    inner: Mutex<Inner>,
}

impl ResponseCache {
    pub(crate) fn new(policy: CachePolicy) -> Self {
        Self {
            policy,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// One atomic step: hit, join, or register an in-flight entry.
    pub(crate) fn lookup_or_register(&self, key: &CacheKey, waiter: &Waiter) -> Lookup {
        let mut inner = self.lock();
        match inner.map.get_mut(key) {
            Some(Slot::Ready(forecast)) => Lookup::Hit(forecast.clone()),
            Some(Slot::InFlight(waiters)) => {
                waiters.push(waiter.clone());
                Lookup::Joined
            }
            None => {
                inner.map.insert(key.clone(), Slot::InFlight(Vec::new()));
                Lookup::Registered
            }
        }
    }

    /// Publishes the computed result for a registered key: every joined
    /// waiter receives a clone, and on success the entry becomes `Ready`
    /// (evicting the oldest completed entry past capacity). Errors drop
    /// the entry so the next identical request retries.
    pub(crate) fn fulfill(&self, key: &CacheKey, result: &Result<Forecast, ServeError>) {
        let mut inner = self.lock();
        let waiters = match inner.map.remove(key) {
            Some(Slot::InFlight(waiters)) => waiters,
            // A concurrent fulfill already completed this key; keep the
            // existing entry and don't double-count it in the FIFO.
            Some(ready @ Slot::Ready(_)) => {
                inner.map.insert(key.clone(), ready);
                return;
            }
            None => Vec::new(),
        };
        if let Ok(forecast) = result {
            if self.policy.capacity > 0 {
                while inner.order.len() >= self.policy.capacity {
                    if let Some(old) = inner.order.pop_front() {
                        if matches!(inner.map.get(&old), Some(Slot::Ready(_))) {
                            inner.map.remove(&old);
                        }
                    }
                }
                inner.map.insert(key.clone(), Slot::Ready(forecast.clone()));
                inner.order.push_back(key.clone());
            }
        }
        drop(inner);
        for waiter in waiters {
            let _ = waiter.send(result.clone());
        }
    }

    /// Withdraws a registered key whose compute was never admitted
    /// (shed or shutdown): joined waiters get the same typed error.
    pub(crate) fn abort(&self, key: &CacheKey, err: &ServeError) {
        let waiters = match self.lock().map.remove(key) {
            Some(Slot::InFlight(waiters)) => waiters,
            _ => Vec::new(),
        };
        for waiter in waiters {
            let _ = waiter.send(Err(err.clone()));
        }
    }

    /// Drops every completed entry not from `generation` (after a
    /// hot-swap). In-flight entries survive — their carrying requests are
    /// already queued and will fulfill their waiters.
    pub(crate) fn retain_generation(&self, generation: u64) {
        let mut inner = self.lock();
        inner
            .map
            .retain(|k, slot| k.generation == generation || matches!(slot, Slot::InFlight(_)));
        let map = &inner.map;
        let retained: VecDeque<CacheKey> = inner
            .order
            .iter()
            .filter(|k| map.contains_key(*k))
            .cloned()
            .collect();
        inner.order = retained;
    }

    /// Number of completed entries currently cached.
    pub(crate) fn len(&self) -> usize {
        self.lock()
            .map
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }
}
