//! Std-only HTTP/1.1 network front-end over the [`Tenants`] registry.
//!
//! This module is the wire boundary of the serving runtime: a
//! [`std::net::TcpListener`] accept loop feeding a **bounded
//! connection-worker pool**, minimal HTTP/1.1 request parsing, and a
//! typed mapping from [`ServeError`] onto 4xx/5xx status codes. It adds
//! no protocol machinery beyond what a load test or a `curl` caller
//! needs — no TLS, no chunked bodies (`501`), no HTTP/2 — and depends on
//! nothing outside `std` and the workspace's own `urcl-json`.
//!
//! ## Protocol surface (DESIGN.md §15)
//!
//! | Route | Replies |
//! |---|---|
//! | `POST /v1/tenants/{name}/forecast` | `200` forecast, or a mapped [`ServeError`] |
//! | `GET /v1/tenants` | `200` registered tenant names |
//! | `GET /v1/healthz` | `200` liveness + tenant count |
//!
//! The forecast request body is JSON: `{"window": [[[..]..]..]}` — an
//! `[M][N][C]` nested array in physical units, exactly the tensor
//! [`crate::TenantClient::predict`] takes — plus an optional
//! `"affinity"` integer that routes via
//! [`crate::TenantClient::submit_affine`] (strict shard affinity; see
//! there for the shedding trade-off). The response carries
//! the `[H][N]` denormalized prediction and the snapshot generation that
//! served it:
//!
//! ```text
//! POST /v1/tenants/metr-la/forecast HTTP/1.1
//! Content-Type: application/json
//! Content-Length: ...
//!
//! {"window": [[[61.2, 120.0], ...], ...]}
//!
//! HTTP/1.1 200 OK
//! Content-Type: application/json
//! Content-Length: ...
//!
//! {"generation": 3, "prediction": [[59.81, 60.02, ...]]}
//! ```
//!
//! ## Status mapping
//!
//! Typed serving errors map onto status codes without losing their
//! meaning — the JSON error body carries a stable `"kind"` string:
//!
//! * [`ServeError::Shed`] → `503` with `Retry-After: 1` (admission
//!   control rejected the request; the body names the tenant and depth),
//! * [`ServeError::UnknownTenant`] → `404`,
//! * [`ServeError::BadRequest`] → `400`,
//! * [`ServeError::NoSnapshot`] / [`ServeError::ShuttingDown`] → `503`,
//! * malformed request line/headers/JSON → `400`, unknown route → `404`,
//!   wrong method → `405` (+ `Allow`), missing `Content-Length` → `411`,
//!   oversized body → `413`, oversized head → `431`, chunked bodies →
//!   `501`, slow requests → `408` after [`HttpConfig::read_timeout`].
//!
//! ## Keep-alive, timeouts, drain
//!
//! Connections are HTTP/1.1 persistent by default (`Connection: close`
//! honored, pipelined requests served back-to-back from the read
//! buffer). Each worker owns one connection at a time, so
//! [`HttpConfig::workers`] bounds concurrent connections and
//! [`HttpConfig::pending_connections`] bounds accepted-but-unserved
//! ones; beyond that the accept loop answers a canned `503` and closes.
//! A request must arrive in full within [`HttpConfig::read_timeout`] of
//! its first byte (slowloris guard → `408`); an idle keep-alive
//! connection that stays silent for the same timeout is closed quietly.
//!
//! [`HttpServer::shutdown`] (also run on drop) drains gracefully using
//! the same flag-inside-the-mutex protocol as the shard queues
//! (`shard.rs`): the drain flag flips under the connection-queue lock,
//! the accept loop stops admitting, idle connections close at the next
//! tick, and any request whose bytes already started arriving is parsed,
//! served with `Connection: close`, then closed — so in-flight work
//! completes and the drain finishes within a small multiple of one
//! forward pass.
//!
//! Everything is traced: `serve.http.accepted/requests/parse_errors/...`
//! counters and the `serve.http.latency_seconds` histogram land in the
//! `urcl-trace-v1` snapshot next to the shard metrics.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use urcl_json::Value;
use urcl_tensor::Tensor;

use crate::server::ServeError;
use crate::tenant::Tenants;

/// How often blocked reads and idle workers wake to re-check the drain
/// flag; bounds how stale a shutdown observation can be.
const DRAIN_TICK: Duration = Duration::from_millis(50);

/// Network front-end configuration.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` for an ephemeral port (the
    /// default; read the real one back via [`HttpServer::local_addr`]).
    pub addr: String,
    /// Connection-worker pool size. Each worker serves one connection at
    /// a time, so this bounds concurrent (keep-alive) connections.
    pub workers: usize,
    /// Bound on accepted connections waiting for a free worker; beyond
    /// it the accept loop answers `503` and closes immediately.
    pub pending_connections: usize,
    /// Largest accepted request body; larger `Content-Length`s get `413`.
    pub max_body_bytes: usize,
    /// Largest accepted request head (request line + headers); `431`
    /// beyond it.
    pub max_header_bytes: usize,
    /// A request must arrive in full within this much of its first byte
    /// (`408` otherwise — the slowloris guard); an idle keep-alive
    /// connection silent for this long is closed quietly.
    pub read_timeout: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 16,
            pending_connections: 64,
            max_body_bytes: 4 << 20,
            max_header_bytes: 8192,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Point-in-time front-end counters (all atomic reads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpStats {
    /// Connections accepted into the worker pool.
    pub accepted: u64,
    /// Connections rejected with a canned `503` because the pending
    /// queue was full.
    pub rejected: u64,
    /// Requests fully parsed off the wire.
    pub requests: u64,
    /// Responses with 2xx status.
    pub responses_2xx: u64,
    /// Responses with 4xx status.
    pub responses_4xx: u64,
    /// Responses with 5xx status.
    pub responses_5xx: u64,
    /// Malformed request lines, headers, or JSON bodies.
    pub parse_errors: u64,
    /// Requests that ran out the read deadline mid-transfer (`408`).
    pub timeouts: u64,
    /// Failed response writes (client went away mid-response).
    pub write_errors: u64,
    /// `accept(2)` failures (transient; the loop keeps going).
    pub accept_errors: u64,
}

#[derive(Default)]
struct HttpCounters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    parse_errors: AtomicU64,
    timeouts: AtomicU64,
    write_errors: AtomicU64,
    accept_errors: AtomicU64,
}

/// Accepted connections waiting for a worker; the drain flag lives
/// inside the same mutex, exactly like the shard queues' protocol.
struct ConnQueue {
    queue: VecDeque<TcpStream>,
    draining: bool,
}

struct HttpShared {
    tenants: Arc<Tenants>,
    config: HttpConfig,
    conns: Mutex<ConnQueue>,
    notify: Condvar,
    stop_accept: AtomicBool,
    stats: HttpCounters,
}

impl HttpShared {
    fn lock_conns(&self) -> MutexGuard<'_, ConnQueue> {
        self.conns.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn draining(&self) -> bool {
        self.lock_conns().draining
    }
}

/// The running HTTP front-end: an accept thread plus a bounded worker
/// pool serving [`Tenants`] over the wire. Dropping it (or calling
/// [`HttpServer::shutdown`]) drains gracefully.
pub struct HttpServer {
    shared: Arc<HttpShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds the listener and starts the accept loop and worker pool.
    /// With the default `addr` of `"127.0.0.1:0"` the OS picks an
    /// ephemeral port — read it back with [`HttpServer::local_addr`].
    pub fn bind(tenants: Arc<Tenants>, config: HttpConfig) -> std::io::Result<Self> {
        assert!(config.workers > 0, "workers must be positive");
        assert!(
            config.pending_connections > 0,
            "pending_connections must be positive"
        );
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(HttpShared {
            tenants,
            config,
            conns: Mutex::new(ConnQueue {
                queue: VecDeque::new(),
                draining: false,
            }),
            notify: Condvar::new(),
            stop_accept: AtomicBool::new(false),
            stats: HttpCounters::default(),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("urcl-http-accept".to_string())
                .spawn(move || accept_loop(&shared, listener))
                .expect("spawn http accept thread")
        };
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("urcl-http-w{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn http worker")
            })
            .collect();
        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (with the real port when `addr` asked for an
    /// ephemeral one).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time front-end counters.
    pub fn stats(&self) -> HttpStats {
        let s = &self.shared.stats;
        HttpStats {
            accepted: s.accepted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            requests: s.requests.load(Ordering::Relaxed),
            responses_2xx: s.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: s.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: s.responses_5xx.load(Ordering::Relaxed),
            parse_errors: s.parse_errors.load(Ordering::Relaxed),
            timeouts: s.timeouts.load(Ordering::Relaxed),
            write_errors: s.write_errors.load(Ordering::Relaxed),
            accept_errors: s.accept_errors.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain (idempotent; also runs on drop): stop accepting,
    /// close idle connections at the next tick, finish any request whose
    /// bytes already started arriving (answered with `Connection:
    /// close`), then join every thread.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.lock_conns();
            q.draining = true;
        }
        self.shared.notify.notify_all();
        self.shared.stop_accept.store(true, Ordering::Release);
        // A blocking accept(2) only returns on a connection: poke it.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &HttpShared, listener: TcpListener) {
    loop {
        let mut stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) if shared.stop_accept.load(Ordering::Acquire) => return,
            Err(_) => {
                shared.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                if urcl_trace::enabled() {
                    urcl_trace::counter_inc("serve.http.accept_errors");
                }
                continue;
            }
        };
        if shared.stop_accept.load(Ordering::Acquire) {
            // The shutdown poke (or a late real client); either way the
            // front door is closed.
            return;
        }
        let mut q = shared.lock_conns();
        if q.draining {
            // Late arrival during drain: closed unanswered, like a
            // listener that is already gone.
            drop(q);
            drop(stream);
        } else if q.queue.len() >= shared.config.pending_connections {
            drop(q);
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            if urcl_trace::enabled() {
                urcl_trace::counter_inc("serve.http.rejected_connections");
            }
            // Best-effort canned 503 with a bounded write; the accept
            // loop must never stall on a slow client.
            let _ = stream.set_write_timeout(Some(DRAIN_TICK));
            let _ = stream.write_all(
                b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\
                  Connection: close\r\nRetry-After: 1\r\n\r\n",
            );
        } else {
            q.queue.push_back(stream);
            drop(q);
            shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            if urcl_trace::enabled() {
                urcl_trace::counter_inc("serve.http.accepted");
            }
            shared.notify.notify_one();
        }
    }
}

fn worker_loop(shared: &HttpShared) {
    loop {
        let stream = {
            let mut q = shared.lock_conns();
            loop {
                if let Some(stream) = q.queue.pop_front() {
                    break Some(stream);
                }
                if q.draining {
                    break None;
                }
                q = shared
                    .notify
                    .wait_timeout(q, DRAIN_TICK)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        match stream {
            Some(stream) => handle_connection(shared, stream),
            None => return,
        }
    }
}

// ---------------------------------------------------------------- parsing

/// One parsed request. `close` folds in the client's `Connection`
/// preference and the HTTP version default.
struct Request {
    method: String,
    path: String,
    close: bool,
    body: Vec<u8>,
}

/// A request that could not be read: either a protocol error to answer
/// (and then close), or a silent close (clean EOF / idle timeout /
/// drain while idle).
enum ReadOutcome {
    Ok(Request),
    /// Answer with this response, then close the connection.
    Fail(Response),
    /// Close without writing anything.
    Close,
}

/// Reads one request from `stream`, carrying pipelined leftovers across
/// calls in `buf`. All waiting is tick-based so the drain flag is
/// observed within [`DRAIN_TICK`] even mid-transfer.
fn read_request(shared: &HttpShared, stream: &mut TcpStream, buf: &mut Vec<u8>) -> ReadOutcome {
    let mut deadline: Option<Instant> = if buf.is_empty() {
        None // idle: the clock starts at the first byte
    } else {
        Some(Instant::now() + shared.config.read_timeout)
    };
    let idle_close = Instant::now() + shared.config.read_timeout;

    // Phase 1: the head, up to the blank line.
    let head_len = loop {
        if let Some(pos) = find_head_end(buf) {
            if pos > shared.config.max_header_bytes {
                return ReadOutcome::Fail(Response::error(
                    431,
                    "request_header_fields_too_large",
                    "request head exceeds the configured limit",
                ));
            }
            break pos;
        }
        if buf.len() > shared.config.max_header_bytes {
            return ReadOutcome::Fail(Response::error(
                431,
                "request_header_fields_too_large",
                "request head exceeds the configured limit",
            ));
        }
        match read_chunk(stream, buf) {
            ReadChunk::Data => {
                deadline.get_or_insert(Instant::now() + shared.config.read_timeout);
            }
            ReadChunk::Eof => {
                return if buf.is_empty() {
                    ReadOutcome::Close // clean keep-alive close
                } else {
                    ReadOutcome::Fail(Response::error(
                        400,
                        "truncated_request",
                        "connection closed mid-request",
                    ))
                };
            }
            ReadChunk::Tick => {
                if buf.is_empty() {
                    // Idle keep-alive connection: close quietly on drain
                    // or after the idle timeout.
                    if shared.draining() || Instant::now() >= idle_close {
                        return ReadOutcome::Close;
                    }
                } else if deadline.is_some_and(|d| Instant::now() >= d) {
                    shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    if urcl_trace::enabled() {
                        urcl_trace::counter_inc("serve.http.timeouts");
                    }
                    return ReadOutcome::Fail(Response::error(
                        408,
                        "request_timeout",
                        "request did not arrive within the read timeout",
                    ));
                }
            }
            ReadChunk::Err => return ReadOutcome::Close,
        }
    };

    // Phase 2: parse the head into owned values (the buffer is mutated
    // again below, so nothing may keep borrowing it).
    let (method, path, connection_close, expect_continue, content_length) = {
        let head = match std::str::from_utf8(&buf[..head_len]) {
            Ok(head) => head,
            Err(_) => {
                return ReadOutcome::Fail(Response::error(
                    400,
                    "bad_request",
                    "request head is not valid UTF-8",
                ))
            }
        };
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
                _ => {
                    return ReadOutcome::Fail(Response::error(
                        400,
                        "bad_request",
                        "malformed request line",
                    ))
                }
            };
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return ReadOutcome::Fail(Response::error(
                505,
                "http_version_not_supported",
                "only HTTP/1.0 and HTTP/1.1 are supported",
            ));
        }
        let mut content_length: Option<usize> = None;
        let mut connection_close = version == "HTTP/1.0";
        let mut expect_continue = false;
        for line in lines {
            if line.is_empty() {
                continue; // the terminating blank line
            }
            let Some((name, value)) = line.split_once(':') else {
                return ReadOutcome::Fail(Response::error(
                    400,
                    "bad_request",
                    "malformed header line",
                ));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => match value.parse::<usize>() {
                    Ok(len) => content_length = Some(len),
                    Err(_) => {
                        return ReadOutcome::Fail(Response::error(
                            400,
                            "bad_request",
                            "unparseable Content-Length",
                        ))
                    }
                },
                "transfer-encoding" => {
                    return ReadOutcome::Fail(Response::error(
                        501,
                        "not_implemented",
                        "chunked transfer encoding is not supported",
                    ))
                }
                "connection" => {
                    let v = value.to_ascii_lowercase();
                    if v.contains("close") {
                        connection_close = true;
                    } else if v.contains("keep-alive") {
                        connection_close = false;
                    }
                }
                "expect" => expect_continue = value.eq_ignore_ascii_case("100-continue"),
                _ => {}
            }
        }
        let path = target.split('?').next().unwrap_or(target).to_string();
        (
            method.to_string(),
            path,
            connection_close,
            expect_continue,
            content_length,
        )
    };
    let body_len = match content_length {
        Some(len) => len,
        None if method == "POST" || method == "PUT" => {
            return ReadOutcome::Fail(Response::error(
                411,
                "length_required",
                "POST requires Content-Length (chunked bodies are not supported)",
            ))
        }
        None => 0,
    };
    if body_len > shared.config.max_body_bytes {
        return ReadOutcome::Fail(Response::error(
            413,
            "payload_too_large",
            "request body exceeds the configured limit",
        ));
    }
    if expect_continue && body_len > buf.len() - head_len {
        // The client is holding the body back until we commit.
        if stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_err() {
            return ReadOutcome::Close;
        }
    }

    // Phase 3: the body (whatever of it is not already buffered).
    let deadline = deadline.unwrap_or_else(|| Instant::now() + shared.config.read_timeout);
    while buf.len() < head_len + body_len {
        match read_chunk(stream, buf) {
            ReadChunk::Data => {}
            ReadChunk::Eof => {
                return ReadOutcome::Fail(Response::error(
                    400,
                    "truncated_request",
                    "connection closed mid-body",
                ))
            }
            ReadChunk::Tick => {
                if Instant::now() >= deadline {
                    shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    if urcl_trace::enabled() {
                        urcl_trace::counter_inc("serve.http.timeouts");
                    }
                    return ReadOutcome::Fail(Response::error(
                        408,
                        "request_timeout",
                        "request body did not arrive within the read timeout",
                    ));
                }
            }
            ReadChunk::Err => return ReadOutcome::Close,
        }
    }
    let body = buf[head_len..head_len + body_len].to_vec();
    // Keep pipelined bytes of the next request.
    buf.drain(..head_len + body_len);
    ReadOutcome::Ok(Request {
        method,
        path,
        close: connection_close,
        body,
    })
}

/// Byte offset just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

enum ReadChunk {
    Data,
    Eof,
    Tick,
    Err,
}

/// One tick-bounded read: appends whatever arrived within [`DRAIN_TICK`].
fn read_chunk(stream: &mut TcpStream, buf: &mut Vec<u8>) -> ReadChunk {
    let _ = stream.set_read_timeout(Some(DRAIN_TICK));
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => ReadChunk::Eof,
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            ReadChunk::Data
        }
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
            ReadChunk::Tick
        }
        Err(e) if e.kind() == ErrorKind::Interrupted => ReadChunk::Tick,
        Err(_) => ReadChunk::Err,
    }
}

// --------------------------------------------------------------- responses

struct Response {
    status: u16,
    body: String,
    /// `Allow` header for 405s.
    allow: Option<&'static str>,
    /// Adds `Retry-After: 1` (shed responses, so well-behaved clients
    /// back off instead of hammering the admission bound).
    retry_after: bool,
}

impl Response {
    fn json(status: u16, body: Value) -> Self {
        Self {
            status,
            body: body.to_string_compact(),
            allow: None,
            retry_after: false,
        }
    }

    /// A JSON error body with a stable machine-readable `kind`.
    fn error(status: u16, kind: &str, message: &str) -> Self {
        Self::json(
            status,
            Value::object().with("kind", kind).with("error", message),
        )
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

fn write_response(
    shared: &HttpShared,
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(allow) = resp.allow {
        head.push_str("Allow: ");
        head.push_str(allow);
        head.push_str("\r\n");
    }
    if resp.retry_after {
        head.push_str("Retry-After: 1\r\n");
    }
    head.push_str("\r\n");
    let class = match resp.status {
        200..=299 => &shared.stats.responses_2xx,
        400..=499 => &shared.stats.responses_4xx,
        _ => &shared.stats.responses_5xx,
    };
    class.fetch_add(1, Ordering::Relaxed);
    if urcl_trace::enabled() {
        urcl_trace::counter_inc(&format!("serve.http.responses.{}", resp.status));
    }
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

// ---------------------------------------------------------------- handling

fn handle_connection(shared: &HttpShared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut buf = Vec::new();
    loop {
        let request = match read_request(shared, &mut stream, &mut buf) {
            ReadOutcome::Ok(request) => request,
            ReadOutcome::Fail(resp) => {
                if matches!(resp.status, 400 | 431 | 505) {
                    shared.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                    if urcl_trace::enabled() {
                        urcl_trace::counter_inc("serve.http.parse_errors");
                    }
                }
                let _ = write_response(shared, &mut stream, &resp, false);
                return;
            }
            ReadOutcome::Close => return,
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        let traced = urcl_trace::enabled();
        if traced {
            urcl_trace::counter_inc("serve.http.requests");
        }
        let t0 = Instant::now();
        let resp = dispatch(shared, &request);
        if traced {
            urcl_trace::histogram_record(
                "serve.http.latency_seconds",
                t0.elapsed().as_secs_f64(),
            );
        }
        // Drain observed after compute: the answer still goes out, with
        // `Connection: close` so the client re-connects elsewhere.
        let keep_alive = !request.close && !shared.draining();
        if write_response(shared, &mut stream, &resp, keep_alive).is_err() {
            // The client went away mid-response (kill -9, reset, …). The
            // forecast was already computed and the shard moved on; this
            // worker just drops the connection and serves the next one.
            shared.stats.write_errors.fetch_add(1, Ordering::Relaxed);
            if traced {
                urcl_trace::counter_inc("serve.http.write_errors");
            }
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

fn dispatch(shared: &HttpShared, request: &Request) -> Response {
    let segments: Vec<&str> = request
        .path
        .split('/')
        .filter(|s| !s.is_empty())
        .collect();
    match segments.as_slice() {
        ["v1", "healthz"] => match request.method.as_str() {
            "GET" | "HEAD" => Response::json(
                200,
                Value::object()
                    .with("ok", true)
                    .with("tenants", shared.tenants.len() as u64),
            ),
            _ => method_not_allowed("GET"),
        },
        ["v1", "tenants"] => match request.method.as_str() {
            "GET" => {
                let names = shared
                    .tenants
                    .names()
                    .into_iter()
                    .map(Value::Str)
                    .collect();
                Response::json(200, Value::object().with("tenants", Value::Array(names)))
            }
            _ => method_not_allowed("GET"),
        },
        ["v1", "tenants", name, "forecast"] => match request.method.as_str() {
            "POST" => forecast(shared, name, &request.body),
            _ => method_not_allowed("POST"),
        },
        _ => Response::error(404, "unknown_route", "no such route"),
    }
}

fn method_not_allowed(allow: &'static str) -> Response {
    let mut resp = Response::error(405, "method_not_allowed", "wrong method for this route");
    resp.allow = Some(allow);
    resp
}

fn forecast(shared: &HttpShared, tenant: &str, body: &[u8]) -> Response {
    let client = match shared.tenants.client(tenant) {
        Ok(client) => client,
        Err(e) => return serve_error(&e),
    };
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            return json_parse_error(shared, "request body is not valid UTF-8".to_string())
        }
    };
    let doc = match Value::parse(text) {
        Ok(doc) => doc,
        Err(e) => return json_parse_error(shared, e.to_string()),
    };
    let window = match doc.get("window") {
        Some(window) => match window_from_json(window) {
            Ok(window) => window,
            Err(msg) => return Response::error(400, "bad_window", &msg),
        },
        None => {
            return Response::error(400, "bad_window", "body must carry a \"window\" key")
        }
    };
    let affinity = doc.get("affinity").and_then(Value::as_u64);
    let result = match affinity {
        Some(key) => client.predict_affine(key, &window),
        None => client.predict(&window),
    };
    match result {
        Ok(forecast) => {
            let shape = forecast.prediction.shape();
            let (h, n) = (shape[0], shape[1]);
            let data = forecast.prediction.data();
            let rows = (0..h)
                .map(|i| urcl_json::f32_array(&data[i * n..(i + 1) * n]))
                .collect();
            Response::json(
                200,
                Value::object()
                    .with("generation", forecast.generation)
                    .with("prediction", Value::Array(rows)),
            )
        }
        Err(e) => serve_error(&e),
    }
}

fn json_parse_error(shared: &HttpShared, msg: String) -> Response {
    shared.stats.parse_errors.fetch_add(1, Ordering::Relaxed);
    if urcl_trace::enabled() {
        urcl_trace::counter_inc("serve.http.parse_errors");
    }
    Response::error(400, "bad_json", &msg)
}

/// The typed 4xx/5xx mapping of [`ServeError`]; the module docs table is
/// generated from exactly this match.
fn serve_error(e: &ServeError) -> Response {
    let (status, kind) = match e {
        ServeError::BadRequest(_) => (400, "bad_request"),
        ServeError::UnknownTenant(_) => (404, "unknown_tenant"),
        ServeError::TenantExists(_) => (409, "tenant_exists"),
        ServeError::Shed { .. } => (503, "shed"),
        ServeError::NoSnapshot => (503, "no_snapshot"),
        ServeError::ShuttingDown => (503, "shutting_down"),
        ServeError::Reload(_) => (500, "reload_failed"),
    };
    let mut resp = Response::error(status, kind, &e.to_string());
    resp.retry_after = matches!(e, ServeError::Shed { .. });
    resp
}

/// Builds the `[M, N, C]` window tensor from its nested-array JSON form,
/// insisting on rectangularity and finite numbers.
fn window_from_json(v: &Value) -> Result<Tensor, String> {
    let steps = v
        .as_array()
        .ok_or("\"window\" must be an [M][N][C] nested array")?;
    if steps.is_empty() {
        return Err("\"window\" has zero time steps".to_string());
    }
    let mut flat = Vec::new();
    let (mut nodes, mut channels) = (0usize, 0usize);
    for (i, step) in steps.iter().enumerate() {
        let row = step
            .as_array()
            .ok_or_else(|| format!("window step {i} is not an array of nodes"))?;
        if i == 0 {
            nodes = row.len();
            if nodes == 0 {
                return Err("\"window\" has zero nodes".to_string());
            }
        } else if row.len() != nodes {
            return Err(format!(
                "window step {i} has {} nodes, step 0 has {nodes}",
                row.len()
            ));
        }
        for (j, node) in row.iter().enumerate() {
            let vals = node
                .as_array()
                .ok_or_else(|| format!("window[{i}][{j}] is not an array of channels"))?;
            if i == 0 && j == 0 {
                channels = vals.len();
                if channels == 0 {
                    return Err("\"window\" has zero channels".to_string());
                }
            } else if vals.len() != channels {
                return Err(format!(
                    "window[{i}][{j}] has {} channels, [0][0] has {channels}",
                    vals.len()
                ));
            }
            for (k, x) in vals.iter().enumerate() {
                let x = x
                    .as_f64()
                    .ok_or_else(|| format!("window[{i}][{j}][{k}] is not a number"))?;
                flat.push(x as f32);
            }
        }
    }
    Ok(Tensor::from_vec(flat, &[steps.len(), nodes, channels]))
}
