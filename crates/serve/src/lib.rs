//! # urcl-serve
//!
//! A batched CPU inference runtime for URCL forecasters — the *answering*
//! half of the paper's deployment story, where the *learning* half is the
//! continual trainer in `urcl-core`.
//!
//! A [`Server`] owns a forward-only view of any [`urcl_models::Backbone`]:
//! callers submit per-sensor windows of recent observations in physical
//! units, the server coalesces concurrent requests into batches under a
//! [`BatchPolicy`] (`max_batch`/`max_delay`), runs one batched forward
//! pass on the shared tensor thread pool, and returns denormalized
//! horizon forecasts. Model weights and normalizer statistics come from
//! `urcl-ckpt-v2` checkpoints in a [`urcl_core::CheckpointDir`] — the
//! very directory a still-running [`urcl_core::UrclPipeline`] trainer
//! writes into — and can be **hot-swapped** without dropping requests:
//!
//! * a reload (manual [`Server::reload_now`] or the background poller
//!   enabled by [`ServeConfig::reload_interval`]) validates the new
//!   checkpoint against the model's parameter layout, then atomically
//!   swaps an [`std::sync::Arc`]`<`[`ModelSnapshot`]`>` between batches;
//! * every batch captures the `Arc` once before running, so in-flight
//!   requests always complete on the snapshot they started with;
//! * torn or unloadable checkpoints never take the server down — the old
//!   snapshot keeps serving and the rotation's `previous` slot is used as
//!   a fallback (see DESIGN.md §10 for the full protocol).
//!
//! The whole path is instrumented with `urcl-trace`: a
//! `serve.queue_depth` gauge, `serve.batch_size` and
//! `serve.latency_seconds` histograms, and `serve.swaps` /
//! `serve.requests` / `serve.batches` / `serve.reload_failures` counters.
//! `bench_serve` (in `crates/bench`) sweeps batch sizes and thread counts
//! over this runtime and writes `BENCH_serve.json`.
//!
//! ## Quick use
//!
//! ```no_run
//! use std::time::Duration;
//! use urcl_core::CheckpointDir;
//! use urcl_models::{GraphWaveNet, GwnConfig};
//! use urcl_serve::{ServeConfig, Server};
//! use urcl_tensor::{ParamStore, Rng, Tensor};
//!
//! // Rebuild the *architecture* the trainer used (weights come from disk).
//! let mut template = ParamStore::new();
//! let mut rng = Rng::seed_from_u64(0);
//! let network = urcl_graph::random_geometric(24, 0.3, &mut rng);
//! let model = GraphWaveNet::new(&mut template, &mut rng, &network,
//!     GwnConfig::small(24, 2, 12, 1));
//!
//! let config = ServeConfig {
//!     reload_interval: Some(Duration::from_millis(500)), // follow the trainer
//!     ..ServeConfig::default()
//! };
//! let server = Server::start(model, template,
//!     CheckpointDir::new("ckpts").unwrap(), config);
//! let window = Tensor::zeros(&[12, 24, 2]); // [M, N, C], physical units
//! let forecast = server.predict(&window).unwrap();
//! println!("horizon forecast {:?} from snapshot generation {}",
//!     forecast.prediction.shape(), forecast.generation);
//! ```

#![warn(missing_docs)]

mod server;
mod snapshot;

pub use server::{
    forward_batch, BatchPolicy, Forecast, PendingForecast, ServeConfig, ServeError, Server,
    ServerStats,
};
pub use snapshot::ModelSnapshot;
