//! # urcl-serve
//!
//! A sharded, multi-tenant batched CPU inference runtime for URCL
//! forecasters — the *answering* half of the paper's deployment story,
//! where the *learning* half is the continual trainer in `urcl-core`.
//!
//! One process serves many dataset/model **tenants** (METR-LA, PEMS-BAY,
//! PEMS04, PEMS08 analogues, …) concurrently through a [`Tenants`]
//! registry; a single-model deployment uses the [`Server`] facade over
//! the identical runtime. Each tenant owns:
//!
//! * **Shards** — `N` independent request queues, each with its own
//!   worker thread, mutex and condvar. The request path takes only the
//!   owning shard's lock: no global lock, no cross-tenant contention.
//!   Within a shard, concurrent requests coalesce into batches under a
//!   [`BatchPolicy`] (`max_batch`/`max_delay`) and run as one forward.
//! * **Admission control** — every shard queue is bounded
//!   ([`ServeConfig::queue_bound`]); when all shards of a tenant are
//!   full the submit fails fast with [`ServeError::Shed`], carrying the
//!   tenant name and observed depth. Overload is typed backpressure,
//!   not unbounded memory growth.
//! * **Hot-swap** — weights and normalizer statistics come from
//!   `urcl-ckpt-v2` checkpoints in the tenant's own
//!   [`urcl_core::CheckpointDir`] (the very directory that tenant's
//!   still-running [`urcl_core::UrclPipeline`] trainer writes into) and
//!   swap atomically between batches via `Arc<`[`ModelSnapshot`]`>`.
//!   Every batch captures the `Arc` once, so in-flight requests always
//!   complete on the snapshot they started with; torn or unloadable
//!   checkpoints fall back per tenant and never take the server down
//!   (see DESIGN.md §10 and §13).
//! * **Response cache** (optional, [`CachePolicy`]) — a forecaster is a
//!   pure function of `(snapshot generation, window)`, so completed
//!   forecasts are memoized *exactly* (keys compare the full window bit
//!   pattern) and identical concurrent requests deduplicate onto one
//!   in-flight forward. Hot-swaps purge stale generations.
//! * **Work stealing** ([`ServeConfig::steal`], on by default) — a shard
//!   worker whose own queue is empty drains the oldest requests of a hot
//!   sibling instead of sleeping, keeping every worker busy under skewed
//!   load without touching admission, drain, or response bits.
//!
//! The registry is externally drivable over the wire: [`HttpServer`]
//! (module [`http`]) binds a std-only HTTP/1.1 listener with a bounded
//! connection-worker pool and serves `POST
//! /v1/tenants/{name}/forecast` with JSON windows, mapping every
//! [`ServeError`] onto a typed 4xx/5xx status.
//!
//! The whole path is instrumented with `urcl-trace`: global
//! `serve.requests` / `serve.batches` / `serve.shed` / `serve.swaps` /
//! `serve.reload_failures` counters plus per-tenant
//! `serve.tenant.{name}.*` counters, `serve.tenant.{name}.batch_size` and
//! `.latency_seconds` histograms (exported with estimated `p50`/`p95`/
//! `p99`), and `serve.tenant.{name}.shard{i}.queue_depth` gauges.
//! `bench_serve` (in `crates/bench`) sweeps threads × shards × tenants ×
//! client counts over this runtime and writes `BENCH_serve.json`.
//!
//! ## Quick use (single tenant)
//!
//! ```no_run
//! use std::time::Duration;
//! use urcl_core::CheckpointDir;
//! use urcl_models::{GraphWaveNet, GwnConfig};
//! use urcl_serve::{ServeConfig, Server};
//! use urcl_tensor::{ParamStore, Rng, Tensor};
//!
//! // Rebuild the *architecture* the trainer used (weights come from disk).
//! let mut template = ParamStore::new();
//! let mut rng = Rng::seed_from_u64(0);
//! let network = urcl_graph::random_geometric(24, 0.3, &mut rng);
//! let model = GraphWaveNet::new(&mut template, &mut rng, &network,
//!     GwnConfig::small(24, 2, 12, 1));
//!
//! let config = ServeConfig {
//!     reload_interval: Some(Duration::from_millis(500)), // follow the trainer
//!     ..ServeConfig::default()
//! };
//! let server = Server::start(model, template,
//!     CheckpointDir::new("ckpts").unwrap(), config);
//! let window = Tensor::zeros(&[12, 24, 2]); // [M, N, C], physical units
//! let forecast = server.predict(&window).unwrap();
//! println!("horizon forecast {:?} from snapshot generation {}",
//!     forecast.prediction.shape(), forecast.generation);
//! ```
//!
//! ## Multi-tenant
//!
//! ```no_run
//! use urcl_core::CheckpointDir;
//! use urcl_serve::{CachePolicy, ServeConfig, Tenants};
//! # fn build_model() -> (urcl_models::GraphWaveNet, urcl_tensor::ParamStore) {
//! #     let mut template = urcl_tensor::ParamStore::new();
//! #     let mut rng = urcl_tensor::Rng::seed_from_u64(0);
//! #     let network = urcl_graph::random_geometric(24, 0.3, &mut rng);
//! #     let model = urcl_models::GraphWaveNet::new(&mut template, &mut rng,
//! #         &network, urcl_models::GwnConfig::small(24, 2, 12, 1));
//! #     (model, template)
//! # }
//!
//! let tenants = Tenants::new();
//! for name in ["metr-la", "pems-bay"] {
//!     let (model, template) = build_model(); // per-tenant architecture
//!     tenants.add(name, model, template,
//!         CheckpointDir::new(format!("ckpts/{name}")).unwrap(),
//!         ServeConfig {
//!             shards: 2,
//!             cache: Some(CachePolicy::default()),
//!             ..ServeConfig::default()
//!         }).unwrap();
//! }
//! let la = tenants.client("metr-la").unwrap(); // lock-free request path
//! let window = urcl_tensor::Tensor::zeros(&[12, 24, 2]);
//! match la.predict(&window) {
//!     Ok(f) => println!("{:?}", f.prediction.shape()),
//!     Err(urcl_serve::ServeError::Shed { tenant, depth }) => {
//!         eprintln!("overloaded: {tenant} at depth {depth}");
//!     }
//!     Err(e) => eprintln!("{e}"),
//! }
//! ```

#![warn(missing_docs)]

mod cache;
pub mod http;
mod server;
mod shard;
mod snapshot;
mod tenant;

pub use cache::CachePolicy;
pub use http::{HttpConfig, HttpServer, HttpStats};
pub use server::{
    forward_batch, BatchPolicy, Forecast, PendingForecast, ServeConfig, ServeError, Server,
    ServerStats,
};
pub use snapshot::ModelSnapshot;
pub use tenant::{TenantClient, TenantStats, Tenants};
