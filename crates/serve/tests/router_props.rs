//! Property test for the shard router, driven by the in-tree xoshiro
//! RNG: random (tenant count, shard count, queue bound, batch policy,
//! cache) configurations, asserting for every configuration that
//!
//! * every successful response is bitwise the *owning* tenant's forward
//!   of that window (requests never land on another tenant's model);
//! * no shard queue ever exceeds its admission bound (`peak_depth`);
//! * drain-on-Drop completes with zero stranded waiters: every handle
//!   alive at drop time resolves.

use std::sync::Arc;
use std::time::Duration;

use urcl_core::{CheckpointDir, TrainerConfig, UrclPipeline};
use urcl_serve::{
    forward_batch, BatchPolicy, CachePolicy, ModelSnapshot, PendingForecast, ServeConfig,
    ServeError, Tenants,
};
use urcl_stdata::{DatasetConfig, SyntheticDataset};
use urcl_tensor::{Rng, Tensor};

struct TenantFx {
    name: String,
    ds: SyntheticDataset,
    dir: std::path::PathBuf,
    windows: Vec<Tensor>,
    refs: Vec<Tensor>,
}

impl TenantFx {
    fn new(idx: usize, cfg: DatasetConfig, seed: u64) -> Self {
        let ds = SyntheticDataset::generate(cfg.tiny());
        let dir = std::env::temp_dir().join(format!(
            "urcl-router-props-{}-{idx}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let slots = CheckpointDir::new(&dir).unwrap();
        let mut pipe = UrclPipeline::new(
            ds.network.clone(),
            ds.config.clone(),
            TrainerConfig::default(),
            seed,
        );
        let series = ds.continual_split(2).base.series.clone();
        pipe.observe_period_statistics_only(&series);
        pipe.save_checkpoint(&slots, "router-props").unwrap();
        let m = ds.config.input_steps;
        let windows: Vec<Tensor> = (0..6).map(|i| series.narrow(0, i * 2, m)).collect();
        let (model, template) =
            UrclPipeline::serving_parts(&ds.network, &ds.config, &TrainerConfig::default());
        let snapshot =
            ModelSnapshot::from_checkpoint(&slots.load().unwrap(), &template, 1).unwrap();
        let refs = forward_batch(&model, &snapshot, &windows, ds.config.target_channel);
        Self {
            name: format!("tenant-{idx}"),
            ds,
            dir,
            windows,
            refs,
        }
    }
}

impl Drop for TenantFx {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn matches_bitwise(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Uniform draw from a small inclusive range.
fn pick(rng: &mut Rng, lo: usize, hi: usize) -> usize {
    lo + ((rng.uniform() * (hi - lo + 1) as f32) as usize).min(hi - lo)
}

#[test]
fn random_configs_route_bound_and_drain_correctly() {
    // Three tenants with distinct weights (and, for tenant 2, a distinct
    // channel geometry): a response is attributable to its owner by bits.
    let fixtures = Arc::new(vec![
        TenantFx::new(0, DatasetConfig::metr_la(), 101),
        TenantFx::new(1, DatasetConfig::pems_bay(), 102),
        TenantFx::new(2, DatasetConfig::pems04(), 103),
    ]);
    // Cross-check the attributability premise: same-geometry tenants 0
    // and 1 still have bitwise-distinct references.
    assert!(
        !matches_bitwise(&fixtures[0].refs[0], &fixtures[1].refs[0]),
        "distinct seeds must give distinct forecasts"
    );

    let mut rng = Rng::seed_from_u64(0x5EED_0007);
    for case in 0..10 {
        let tenant_count = pick(&mut rng, 1, 3);
        let shards = pick(&mut rng, 1, 3);
        let queue_bound = [1, 2, 4, 64][pick(&mut rng, 0, 3)];
        let max_batch = [1, 2, 8][pick(&mut rng, 0, 2)];
        let max_delay = Duration::from_millis(pick(&mut rng, 0, 3) as u64);
        let cache = rng.uniform() < 0.5;
        let ctx = format!(
            "case {case}: tenants={tenant_count} shards={shards} bound={queue_bound} \
             max_batch={max_batch} max_delay={max_delay:?} cache={cache}"
        );

        let registry = Arc::new(Tenants::new());
        for fx in fixtures.iter().take(tenant_count) {
            let (model, template) = UrclPipeline::serving_parts_dyn(
                &fx.ds.network,
                &fx.ds.config,
                &TrainerConfig::default(),
            );
            registry
                .add(
                    &fx.name,
                    model,
                    template,
                    CheckpointDir::new(&fx.dir).unwrap(),
                    ServeConfig {
                        policy: BatchPolicy {
                            max_batch,
                            max_delay,
                        },
                        target_channel: fx.ds.config.target_channel,
                        shards,
                        queue_bound,
                        cache: cache.then(CachePolicy::default),
                        ..ServeConfig::default()
                    },
                )
                .expect("register tenant");
        }

        // Burst phase: 6 client threads per tenant, 5 requests each.
        let mut handles = Vec::new();
        for (t, fx) in fixtures.iter().take(tenant_count).enumerate() {
            let client = registry.client(&fx.name).unwrap();
            for c in 0..6 {
                let client = client.clone();
                let windows = fx.windows.clone();
                let refs = fx.refs.clone();
                let ctx = ctx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    for r in 0..5 {
                        let i = (t + c + r) % windows.len();
                        match client.submit(windows[i].clone()) {
                            Ok(pending) => {
                                let forecast = pending
                                    .wait_timeout(Duration::from_secs(30))
                                    .unwrap_or_else(|| panic!("{ctx}: stranded waiter"))
                                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                                assert!(
                                    matches_bitwise(&forecast.prediction, &refs[i]),
                                    "{ctx}: client {c} req {r} answered by the wrong tenant"
                                );
                                ok += 1;
                            }
                            Err(ServeError::Shed { tenant, .. }) => {
                                assert_eq!(
                                    tenant,
                                    client.name(),
                                    "{ctx}: shed error names the wrong tenant"
                                );
                                shed += 1;
                            }
                            Err(e) => panic!("{ctx}: unexpected error {e}"),
                        }
                    }
                    (ok, shed)
                }));
            }
        }
        let mut total_ok = 0u64;
        let mut total_shed = 0u64;
        for h in handles {
            let (ok, shed) = h.join().expect("client thread");
            total_ok += ok;
            total_shed += shed;
        }
        assert_eq!(
            total_ok + total_shed,
            (tenant_count * 6 * 5) as u64,
            "{ctx}: conservation"
        );

        // Bound property: no shard queue ever exceeded its bound, and
        // registry counters agree with the client-side tallies.
        let mut stats_requests = 0u64;
        let mut stats_shed = 0u64;
        for fx in fixtures.iter().take(tenant_count) {
            let client = registry.client(&fx.name).unwrap();
            assert_eq!(client.shard_count(), shards, "{ctx}");
            for depth in client.peak_queue_depths() {
                assert!(
                    depth <= queue_bound,
                    "{ctx}: peak depth {depth} exceeded bound {queue_bound}"
                );
            }
            let s = client.stats();
            stats_requests += s.requests;
            stats_shed += s.shed;
        }
        assert_eq!(stats_requests, total_ok, "{ctx}: accepted-request counter");
        assert_eq!(stats_shed, total_shed, "{ctx}: shed counter");

        // Drain phase: submit a final burst, drop the registry with the
        // handles still pending, then demand every handle resolves.
        let mut pending: Vec<(usize, Result<PendingForecast, ServeError>)> = Vec::new();
        for (t, fx) in fixtures.iter().take(tenant_count).enumerate() {
            for r in 0..4 {
                let i = (t + r) % fx.windows.len();
                pending.push((t, registry.submit(&fx.name, fx.windows[i].clone())));
            }
        }
        drop(registry);
        for (t, submitted) in pending {
            match submitted {
                Ok(handle) => {
                    let resolved = handle
                        .wait_timeout(Duration::from_secs(30))
                        .unwrap_or_else(|| panic!("{ctx}: waiter stranded by Drop"));
                    match resolved {
                        Ok(forecast) => assert_eq!(
                            forecast.prediction.shape()[1],
                            fixtures[t].ds.config.num_nodes,
                            "{ctx}: drained response has wrong geometry"
                        ),
                        // Accepted-then-drained requests are answered; a
                        // reply can still race the teardown of the last
                        // batch, which must surface as a typed error.
                        Err(ServeError::ShuttingDown) => {}
                        Err(e) => panic!("{ctx}: drained waiter got {e}"),
                    }
                }
                Err(ServeError::Shed { .. }) | Err(ServeError::ShuttingDown) => {}
                Err(e) => panic!("{ctx}: submit failed with {e}"),
            }
        }
    }
}
