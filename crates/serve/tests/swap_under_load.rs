//! Per-tenant hot-swap under load: tenant A swaps checkpoints mid-burst
//! while tenant B is hammered in the same registry. In-flight batches
//! never tear (every response is bitwise one generation or the other,
//! never a mix), swapping A never perturbs B, torn-latest falls back per
//! tenant independently, and a hot-swap purges A's response cache.

use std::sync::Arc;
use std::time::Duration;

use urcl_core::{CheckpointDir, TrainerConfig, UrclPipeline};
use urcl_serve::{
    forward_batch, BatchPolicy, CachePolicy, ModelSnapshot, ServeConfig, ServeError, Tenants,
};
use urcl_stdata::{DatasetConfig, SyntheticDataset};
use urcl_tensor::Tensor;

/// A dataset with two published weight generations (`seed` and
/// `alt_seed`) and solo-forward references for both.
struct SwapFx {
    ds: SyntheticDataset,
    dir: std::path::PathBuf,
    /// `latest.ckpt` bytes of each generation, replayed into `dir` to
    /// simulate the tenant's trainer publishing.
    gen_bytes: [String; 2],
    windows: Vec<Tensor>,
    refs: [Vec<Tensor>; 2],
}

impl SwapFx {
    fn new(tag: &str, cfg: DatasetConfig, seed: u64, alt_seed: u64) -> Self {
        let ds = SyntheticDataset::generate(cfg.tiny());
        let dir = std::env::temp_dir().join(format!(
            "urcl-swap-load-{}-{tag}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let slots = CheckpointDir::new(&dir).unwrap();
        let series = ds.continual_split(2).base.series.clone();
        let m = ds.config.input_steps;
        let windows: Vec<Tensor> = (0..6).map(|i| series.narrow(0, i * 4, m)).collect();
        let (model, template) =
            UrclPipeline::serving_parts(&ds.network, &ds.config, &TrainerConfig::default());

        let mut gen_bytes = Vec::new();
        let mut refs = Vec::new();
        for s in [seed, alt_seed] {
            let mut pipe = UrclPipeline::new(
                ds.network.clone(),
                ds.config.clone(),
                TrainerConfig::default(),
                s,
            );
            pipe.observe_period_statistics_only(&series);
            pipe.save_checkpoint(&slots, &format!("seed {s}")).unwrap();
            gen_bytes.push(std::fs::read_to_string(slots.latest_path()).unwrap());
            let snapshot =
                ModelSnapshot::from_checkpoint(&slots.load().unwrap(), &template, 1).unwrap();
            refs.push(forward_batch(
                &model,
                &snapshot,
                &windows,
                ds.config.target_channel,
            ));
        }
        // Leave generation 0 as the published latest.
        std::fs::write(slots.latest_path(), &gen_bytes[0]).unwrap();
        Self {
            ds,
            dir,
            gen_bytes: [gen_bytes.remove(0), gen_bytes.remove(0)],
            windows,
            refs: {
                let b = refs.remove(1);
                let a = refs.remove(0);
                [a, b]
            },
        }
    }

    fn publish(&self, generation: usize) {
        let slots = CheckpointDir::new(&self.dir).unwrap();
        std::fs::write(slots.latest_path(), &self.gen_bytes[generation]).unwrap();
    }

    fn add_to(&self, registry: &Tenants, name: &str, cache: bool) {
        let (model, template) = UrclPipeline::serving_parts_dyn(
            &self.ds.network,
            &self.ds.config,
            &TrainerConfig::default(),
        );
        let client = registry
            .add(
                name,
                model,
                template,
                CheckpointDir::new(&self.dir).unwrap(),
                ServeConfig {
                    policy: BatchPolicy {
                        max_batch: 4,
                        max_delay: Duration::from_millis(1),
                    },
                    target_channel: self.ds.config.target_channel,
                    shards: 2,
                    cache: cache.then(CachePolicy::default),
                    ..ServeConfig::default()
                },
            )
            .expect("register tenant");
        assert!(client.has_snapshot());
    }
}

impl Drop for SwapFx {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn matches_bitwise(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Truncate a checkpoint file mid-byte (trainer killed mid-publish).
fn tear(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).unwrap();
    std::fs::write(path, &text[..text.len() / 2]).unwrap();
}

/// Hammer tenants A and B from eight threads while A swaps between two
/// weight generations twelve times. Every A response must be bitwise one
/// of A's two generations (never torn), every B response bitwise B's
/// single generation (never perturbed by A's swaps).
#[test]
fn swapping_tenant_a_mid_burst_never_perturbs_tenant_b() {
    let fx_a = SwapFx::new("a", DatasetConfig::metr_la(), 11, 12);
    let fx_b = SwapFx::new("b", DatasetConfig::pems04(), 13, 14);
    let registry = Arc::new(Tenants::new());
    fx_a.add_to(&registry, "tenant-a", false);
    fx_b.add_to(&registry, "tenant-b", false);

    let mut handles = Vec::new();
    for w in 0..8 {
        let registry = Arc::clone(&registry);
        let (windows_a, refs_a0, refs_a1) =
            (fx_a.windows.clone(), fx_a.refs[0].clone(), fx_a.refs[1].clone());
        let (windows_b, refs_b) = (fx_b.windows.clone(), fx_b.refs[0].clone());
        handles.push(std::thread::spawn(move || {
            for round in 0..30 {
                let i = (w + round) % windows_a.len();
                let fa = registry
                    .predict("tenant-a", &windows_a[i])
                    .expect("A served");
                assert!(
                    matches_bitwise(&fa.prediction, &refs_a0[i])
                        || matches_bitwise(&fa.prediction, &refs_a1[i]),
                    "worker {w} round {round}: tenant A forecast torn \
                     (matches neither generation)"
                );
                let j = (w + round) % windows_b.len();
                let fb = registry
                    .predict("tenant-b", &windows_b[j])
                    .expect("B served");
                assert!(
                    matches_bitwise(&fb.prediction, &refs_b[j]),
                    "worker {w} round {round}: tenant B perturbed by A's swaps"
                );
            }
        }));
    }

    let mut swapped = 0u64;
    for round in 0..12 {
        fx_a.publish(1 - round % 2);
        if registry.reload_now("tenant-a").expect("reload A") {
            swapped += 1;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for h in handles {
        h.join().expect("no worker panicked");
    }
    assert!(swapped >= 2, "load test never actually swapped ({swapped})");
    let stats_a = registry.stats("tenant-a").unwrap();
    let stats_b = registry.stats("tenant-b").unwrap();
    assert_eq!(stats_a.swaps, swapped + 1, "initial load + live swaps");
    assert_eq!(stats_b.swaps, 1, "B must never swap");
    assert_eq!(stats_b.reload_failures, 0);
}

/// Torn-latest falls back per tenant: tearing A's `latest.ckpt` sends A
/// to its `previous` slot while B (same registry) is untouched; tearing
/// both of A's slots leaves A serving its in-memory snapshot and B still
/// healthy.
#[test]
fn torn_latest_falls_back_per_tenant_independently() {
    let fx_a = SwapFx::new("torn-a", DatasetConfig::metr_la(), 21, 22);
    let fx_b = SwapFx::new("torn-b", DatasetConfig::pems08(), 23, 24);
    let registry = Tenants::new();
    fx_a.add_to(&registry, "tenant-a", false);
    fx_b.add_to(&registry, "tenant-b", false);
    let slots_a = CheckpointDir::new(&fx_a.dir).unwrap();

    // Rotate: generation 1 becomes latest, generation 0 previous...
    fx_a.publish(1);
    assert!(registry.reload_now("tenant-a").unwrap());
    let ckpt_prev = std::fs::read_to_string(slots_a.latest_path()).unwrap();
    std::fs::write(slots_a.previous_path(), ckpt_prev).unwrap();
    // ...then the next publish tears mid-write.
    fx_a.publish(0);
    tear(&slots_a.latest_path());

    // A falls back to previous (generation-1 weights) — still a swap.
    assert!(registry.reload_now("tenant-a").unwrap());
    let fa = registry.predict("tenant-a", &fx_a.windows[0]).unwrap();
    assert!(
        matches_bitwise(&fa.prediction, &fx_a.refs[1][0]),
        "A must serve the fallback (previous) generation"
    );
    assert_eq!(registry.stats("tenant-a").unwrap().reload_failures, 0);

    // B is untouched by A's disk corruption.
    let fb = registry.predict("tenant-b", &fx_b.windows[0]).unwrap();
    assert!(matches_bitwise(&fb.prediction, &fx_b.refs[0][0]));
    assert_eq!(registry.stats("tenant-b").unwrap().reload_failures, 0);

    // Both of A's slots torn: typed error, old snapshot keeps serving.
    tear(&slots_a.latest_path());
    tear(&slots_a.previous_path());
    match registry.reload_now("tenant-a") {
        Err(ServeError::Reload(_)) => {}
        other => panic!("expected Reload error, got {other:?}"),
    }
    let fa = registry.predict("tenant-a", &fx_a.windows[0]).unwrap();
    assert!(
        matches_bitwise(&fa.prediction, &fx_a.refs[1][0]),
        "A must keep serving its in-memory snapshot"
    );
    assert_eq!(registry.stats("tenant-a").unwrap().reload_failures, 1);
    let fb = registry.predict("tenant-b", &fx_b.windows[0]).unwrap();
    assert!(matches_bitwise(&fb.prediction, &fx_b.refs[0][0]));
}

/// A hot-swap purges the swapped tenant's response cache: the same
/// window re-requested after the swap returns the *new* generation's
/// forecast (bitwise), never a stale cached one.
#[test]
fn hot_swap_purges_response_cache() {
    let fx = SwapFx::new("cache", DatasetConfig::pems_bay(), 31, 32);
    let registry = Tenants::new();
    fx.add_to(&registry, "cached", true);
    let client = registry.client("cached").unwrap();

    // Prime the cache on generation 0.
    for w in &fx.windows {
        client.predict(w).unwrap();
    }
    let before = client.predict(&fx.windows[0]).unwrap();
    assert!(matches_bitwise(&before.prediction, &fx.refs[0][0]));
    assert!(
        client.stats().cache_hits > 0,
        "repeat request must hit the cache"
    );
    assert!(client.cached_len() > 0);

    fx.publish(1);
    assert!(registry.reload_now("cached").unwrap());

    // Same window, post-swap: must be the new generation, not the cache.
    let after = client.predict(&fx.windows[0]).unwrap();
    assert!(
        matches_bitwise(&after.prediction, &fx.refs[1][0]),
        "stale cached forecast served across a hot-swap"
    );
    assert_ne!(before.generation, after.generation);
}
