//! Multi-tenant stress: hundreds of concurrent clients hammering three
//! tenants at once. The contract — every request gets a response or a
//! typed shed error (none lost, none deadlocked), and every successful
//! response is bitwise equal to a solo `forward_batch` on the same
//! snapshot — plus deterministic admission-control shedding and the
//! fast-activation parity guarantee.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use urcl_core::{CheckpointDir, TrainerConfig, UrclPipeline};
use urcl_serve::{
    forward_batch, BatchPolicy, ModelSnapshot, ServeConfig, ServeError, Tenants,
};
use urcl_stdata::{DatasetConfig, SyntheticDataset};
use urcl_tensor::Tensor;

/// One tenant's dataset, published checkpoint, request windows and
/// solo-forward reference predictions.
struct TenantFx {
    name: &'static str,
    ds: SyntheticDataset,
    dir: std::path::PathBuf,
    windows: Vec<Tensor>,
    refs: Vec<Tensor>,
}

impl TenantFx {
    fn new(name: &'static str, cfg: DatasetConfig, seed: u64) -> Self {
        let ds = SyntheticDataset::generate(cfg.tiny());
        let dir = std::env::temp_dir().join(format!(
            "urcl-shard-stress-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let slots = CheckpointDir::new(&dir).unwrap();
        let mut pipe = UrclPipeline::new(
            ds.network.clone(),
            ds.config.clone(),
            TrainerConfig::default(),
            seed,
        );
        let series = ds.continual_split(2).base.series.clone();
        pipe.observe_period_statistics_only(&series);
        pipe.save_checkpoint(&slots, name).unwrap();

        let m = ds.config.input_steps;
        let windows: Vec<Tensor> = (0..8).map(|i| series.narrow(0, i * 3, m)).collect();
        // Solo references on the pure forward path, same snapshot bytes.
        let (model, template) =
            UrclPipeline::serving_parts(&ds.network, &ds.config, &TrainerConfig::default());
        let snapshot =
            ModelSnapshot::from_checkpoint(&slots.load().unwrap(), &template, 1).unwrap();
        let refs = forward_batch(&model, &snapshot, &windows, ds.config.target_channel);
        Self {
            name,
            ds,
            dir,
            windows,
            refs,
        }
    }

    fn config(&self, shards: usize) -> ServeConfig {
        ServeConfig {
            policy: BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
            },
            target_channel: self.ds.config.target_channel,
            reload_interval: None,
            shards,
            queue_bound: 1024,
            ..ServeConfig::default()
        }
    }
}

impl Drop for TenantFx {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn add_tenant(registry: &Tenants, fx: &TenantFx, config: ServeConfig) {
    let (model, template) = UrclPipeline::serving_parts_dyn(
        &fx.ds.network,
        &fx.ds.config,
        &TrainerConfig::default(),
    );
    let client = registry
        .add(
            fx.name,
            model,
            template,
            CheckpointDir::new(&fx.dir).unwrap(),
            config,
        )
        .expect("register tenant");
    assert!(client.has_snapshot(), "{}: checkpoint must load", fx.name);
}

fn assert_bitwise_eq(a: &Tensor, b: &Tensor, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: element {i}: {x} vs {y}");
    }
}

/// 300 clients (100 per tenant) across three tenants with different
/// geometries. Every request must terminate — a response or a typed
/// error, nothing lost or deadlocked — and every response must be
/// bitwise equal to the owning tenant's solo forward of that window.
#[test]
fn hundreds_of_clients_across_three_tenants() {
    let tenants = [
        TenantFx::new("metr-la", DatasetConfig::metr_la(), 1),
        TenantFx::new("pems-bay", DatasetConfig::pems_bay(), 2),
        TenantFx::new("pems04", DatasetConfig::pems04(), 3),
    ];
    let registry = Arc::new(Tenants::new());
    for fx in &tenants {
        add_tenant(&registry, fx, fx.config(2));
    }

    const CLIENTS: usize = 100;
    const REQS: usize = 10;
    let completed = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for fx in &tenants {
        let client = registry.client(fx.name).unwrap();
        for c in 0..CLIENTS {
            let client = client.clone();
            let windows = fx.windows.clone();
            let refs = fx.refs.clone();
            let name = fx.name;
            let completed = Arc::clone(&completed);
            handles.push(std::thread::spawn(move || {
                for r in 0..REQS {
                    let i = (c + r) % windows.len();
                    let pending = client.submit(windows[i].clone()).expect("admitted");
                    let forecast = pending
                        .wait_timeout(Duration::from_secs(60))
                        .unwrap_or_else(|| panic!("{name} client {c} req {r}: stranded"))
                        .expect("served");
                    assert_bitwise_eq(
                        &forecast.prediction,
                        &refs[i],
                        &format!("{name} client {c} req {r}"),
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
    }
    for h in handles {
        h.join().expect("no client panicked");
    }
    // Conservation: every submitted request was answered exactly once.
    let expected = (tenants.len() * CLIENTS * REQS) as u64;
    assert_eq!(completed.load(Ordering::Relaxed), expected);
    for fx in &tenants {
        let stats = registry.stats(fx.name).unwrap();
        assert_eq!(stats.requests, (CLIENTS * REQS) as u64, "{}", fx.name);
        assert_eq!(stats.shed, 0, "{}: generous bound must not shed", fx.name);
        assert!(stats.max_batch <= 8, "{}: policy violated", fx.name);
    }
    let agg = registry.aggregate_stats();
    assert_eq!(agg.requests, expected);
}

/// Admission control is deterministic and typed: one shard coalescing a
/// large batch behind a long `max_delay` with a tiny queue bound must
/// shed the overflow of a fast burst as `ServeError::Shed` carrying the
/// tenant's name — and still answer everything it admitted.
#[test]
fn flood_beyond_queue_bound_sheds_typed_errors() {
    let fx = TenantFx::new("shed", DatasetConfig::metr_la(), 4);
    let registry = Tenants::new();
    add_tenant(
        &registry,
        &fx,
        ServeConfig {
            policy: BatchPolicy {
                max_batch: 8,
                // The worker holds its batch open this long (the queue
                // can never reach max_batch), freezing the drain while
                // the burst floods in.
                max_delay: Duration::from_millis(300),
            },
            target_channel: fx.ds.config.target_channel,
            shards: 1,
            queue_bound: 4,
            ..ServeConfig::default()
        },
    );
    let client = registry.client("shed").unwrap();
    let mut admitted = Vec::new();
    let mut shed = 0usize;
    for i in 0..50 {
        match client.submit(fx.windows[i % fx.windows.len()].clone()) {
            Ok(pending) => admitted.push((i, pending)),
            Err(ServeError::Shed { tenant, depth }) => {
                assert_eq!(tenant, "shed");
                assert!(depth > 0 && depth <= 4, "shed depth {depth} out of range");
                shed += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(shed > 0, "flood must overflow a bound of 4");
    assert!(!admitted.is_empty(), "some requests must be admitted");
    assert_eq!(admitted.len() + shed, 50, "conservation");
    for (i, pending) in admitted {
        let forecast = pending
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|| panic!("admitted request {i} stranded"))
            .expect("served");
        assert_bitwise_eq(
            &forecast.prediction,
            &fx.refs[i % fx.refs.len()],
            &format!("admitted request {i}"),
        );
    }
    let stats = registry.stats("shed").unwrap();
    assert_eq!(stats.shed, shed as u64);
    // Admission bound held: no shard queue ever exceeded it.
    for depth in client.peak_queue_depths() {
        assert!(depth <= 4, "peak depth {depth} exceeded bound 4");
    }
}

/// A `fast_activations` tenant is bitwise-reproducible too: its served
/// forecasts equal a solo `forward_batch` under a `FastActGuard` on the
/// caller's thread — and genuinely differ from the libm reference, so
/// the flag demonstrably selects the fast kernel.
#[test]
fn fast_activation_tenant_matches_guarded_solo_forward() {
    let fx = TenantFx::new("fastact", DatasetConfig::metr_la(), 5);
    let registry = Tenants::new();
    add_tenant(
        &registry,
        &fx,
        ServeConfig {
            fast_activations: true,
            ..fx.config(1)
        },
    );
    let client = registry.client("fastact").unwrap();
    let (model, template) = UrclPipeline::serving_parts(
        &fx.ds.network,
        &fx.ds.config,
        &TrainerConfig::default(),
    );
    let snapshot = ModelSnapshot::from_checkpoint(
        &CheckpointDir::new(&fx.dir).unwrap().load().unwrap(),
        &template,
        1,
    )
    .unwrap();
    let fast_refs = {
        let _guard = urcl_tensor::FastActGuard::enable();
        forward_batch(&model, &snapshot, &fx.windows, fx.ds.config.target_channel)
    };
    let mut any_kernel_difference = false;
    for (i, window) in fx.windows.iter().enumerate() {
        let served = client.predict(window).expect("served");
        assert_bitwise_eq(
            &served.prediction,
            &fast_refs[i],
            &format!("fast window {i}"),
        );
        // fx.refs were computed without the guard (libm tanh).
        any_kernel_difference |= served
            .prediction
            .data()
            .iter()
            .zip(fx.refs[i].data())
            .any(|(a, b)| a.to_bits() != b.to_bits());
    }
    assert!(
        any_kernel_difference,
        "fast_activations produced bit-identical output to libm on every \
         window — the flag is not reaching the kernel"
    );
}
