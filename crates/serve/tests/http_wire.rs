//! Over-the-wire tests for the HTTP/1.1 front-end: correct forecasts,
//! the typed 4xx/5xx mapping, malformed/truncated/oversized requests,
//! slowloris timeouts, keep-alive pipelining, a killed client
//! mid-response, and graceful drain under load within a time budget.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use urcl_core::{CheckpointDir, TrainerConfig, UrclPipeline};
use urcl_json::Value;
use urcl_serve::{BatchPolicy, HttpConfig, HttpServer, ServeConfig, Tenants};
use urcl_stdata::{DatasetConfig, SyntheticDataset};
use urcl_tensor::Tensor;

struct Fixture {
    ds: SyntheticDataset,
    dir: std::path::PathBuf,
    windows: Vec<Tensor>,
}

impl Fixture {
    fn new(tag: &str) -> Self {
        let ds = SyntheticDataset::generate(DatasetConfig::metr_la().tiny());
        let dir = std::env::temp_dir().join(format!("urcl-http-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let slots = CheckpointDir::new(&dir).unwrap();
        let mut pipe = UrclPipeline::new(
            ds.network.clone(),
            ds.config.clone(),
            TrainerConfig::default(),
            11,
        );
        let series = ds.continual_split(2).base.series.clone();
        pipe.observe_period_statistics_only(&series);
        pipe.save_checkpoint(&slots, tag).unwrap();
        let m = ds.config.input_steps;
        let windows = (0..4).map(|i| series.narrow(0, i * 3, m)).collect();
        Self { ds, dir, windows }
    }

    /// A registry with this fixture as tenant `name`, plus the listener.
    fn serve(&self, name: &str, http: HttpConfig) -> (Arc<Tenants>, HttpServer) {
        let tenants = Arc::new(Tenants::new());
        let (model, template) = UrclPipeline::serving_parts_dyn(
            &self.ds.network,
            &self.ds.config,
            &TrainerConfig::default(),
        );
        let client = tenants
            .add(
                name,
                model,
                template,
                CheckpointDir::new(&self.dir).unwrap(),
                ServeConfig {
                    policy: BatchPolicy {
                        max_batch: 4,
                        max_delay: Duration::from_millis(1),
                    },
                    target_channel: self.ds.config.target_channel,
                    shards: 2,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
        assert!(client.has_snapshot());
        let server = HttpServer::bind(Arc::clone(&tenants), http).unwrap();
        (tenants, server)
    }

    fn window_json(&self, i: usize) -> String {
        window_body(&self.windows[i])
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn window_body(window: &Tensor) -> String {
    let [m, n, c] = [window.shape()[0], window.shape()[1], window.shape()[2]];
    let data = window.data();
    let steps: Vec<Value> = (0..m)
        .map(|i| {
            Value::Array(
                (0..n)
                    .map(|j| urcl_json::f32_array(&data[(i * n + j) * c..(i * n + j + 1) * c]))
                    .collect(),
            )
        })
        .collect();
    Value::object()
        .with("window", Value::Array(steps))
        .to_string_compact()
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Reads one full HTTP response (head + Content-Length body). `carry`
/// holds over-read bytes of the *next* pipelined response between calls
/// — reads land there first, exactly like the server's own request
/// buffer, so back-to-back responses frame correctly.
fn try_read_response(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
) -> std::io::Result<(u16, String, String)> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let head_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(carry[..head_end].to_vec()).unwrap();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    let len: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::trim).map(str::to_string))
        .and_then(|v| v.parse().ok())
        .expect("Content-Length header");
    while carry.len() < head_end + len {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        carry.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(carry[head_end..head_end + len].to_vec()).unwrap();
    carry.drain(..head_end + len);
    Ok((status, head, body))
}

fn read_response_carry(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, String) {
    try_read_response(stream, carry).expect("full response before close")
}

fn read_response(stream: &mut TcpStream) -> (u16, String, String) {
    read_response_carry(stream, &mut Vec::new())
}

/// One-shot request on a fresh connection.
fn roundtrip(server: &HttpServer, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(raw).unwrap();
    read_response(&mut stream)
}

#[test]
fn forecast_over_the_wire_matches_in_process() {
    let fx = Fixture::new("wire");
    let (tenants, server) = fx.serve("metr-la", HttpConfig::default());
    let reference = tenants
        .predict("metr-la", &fx.windows[0])
        .expect("in-process forecast");

    let (status, _head, body) = roundtrip(
        &server,
        &post("/v1/tenants/metr-la/forecast", &fx.window_json(0)),
    );
    assert_eq!(status, 200, "body: {body}");
    let doc = Value::parse(&body).expect("response json");
    assert_eq!(
        doc.get("generation").and_then(Value::as_u64),
        Some(reference.generation)
    );
    let rows = doc
        .get("prediction")
        .and_then(Value::as_array)
        .expect("prediction rows");
    let shape = reference.prediction.shape();
    assert_eq!(rows.len(), shape[0], "horizon rows");
    let mut flat = Vec::new();
    for row in rows {
        let row = row.as_array().expect("prediction row");
        assert_eq!(row.len(), shape[1], "nodes per row");
        for v in row {
            flat.push(v.as_f64().expect("number") as f32);
        }
    }
    // f32 -> JSON f64 -> f32 is lossless, so the wire forecast is
    // bitwise the in-process one.
    for (i, (a, b)) in flat.iter().zip(reference.prediction.data()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "element {i}: {a} vs {b}");
    }
}

#[test]
fn routing_and_status_mapping() {
    let fx = Fixture::new("routes");
    let (_tenants, server) = fx.serve("metr-la", HttpConfig::default());
    let ok_body = fx.window_json(0);

    // Health + listing.
    let (status, _, body) = roundtrip(&server, b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert_eq!(
        Value::parse(&body).unwrap().get("ok").and_then(Value::as_bool),
        Some(true)
    );
    let (status, _, body) = roundtrip(&server, b"GET /v1/tenants HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("metr-la"), "{body}");

    // Unknown route and unknown tenant.
    let (status, _, _) = roundtrip(&server, b"GET /v2/nope HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, 404);
    let (status, _, body) =
        roundtrip(&server, &post("/v1/tenants/ghost/forecast", &ok_body));
    assert_eq!(status, 404);
    assert!(body.contains("unknown_tenant"), "{body}");

    // Wrong method carries Allow.
    let (status, head, _) = roundtrip(
        &server,
        b"GET /v1/tenants/metr-la/forecast HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert_eq!(status, 405);
    assert!(head.contains("Allow: POST"), "{head}");
    let (status, _, _) = roundtrip(&server, &post("/v1/tenants", "{}"));
    assert_eq!(status, 405);

    // Geometry mismatch maps ServeError::BadRequest to 400.
    let tiny = "{\"window\": [[[1.0]]]}";
    let (status, _, body) = roundtrip(&server, &post("/v1/tenants/metr-la/forecast", tiny));
    assert_eq!(status, 400);
    assert!(body.contains("bad_request"), "{body}");
}

#[test]
fn malformed_requests_are_typed_4xx() {
    let fx = Fixture::new("malformed");
    let (_tenants, server) = fx.serve("metr-la", HttpConfig::default());

    // Garbage request line.
    let (status, _, _) = roundtrip(&server, b"NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    // Unsupported version.
    let (status, _, _) = roundtrip(&server, b"GET /v1/healthz HTTP/2.0\r\n\r\n");
    assert_eq!(status, 505);
    // POST without Content-Length.
    let (status, _, _) = roundtrip(
        &server,
        b"POST /v1/tenants/metr-la/forecast HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    assert_eq!(status, 411);
    // Chunked bodies are not implemented.
    let (status, _, _) = roundtrip(
        &server,
        b"POST /v1/tenants/metr-la/forecast HTTP/1.1\r\nHost: t\r\n\
          Transfer-Encoding: chunked\r\n\r\n",
    );
    assert_eq!(status, 501);
    // Unparseable JSON body.
    let (status, _, body) =
        roundtrip(&server, &post("/v1/tenants/metr-la/forecast", "{not json"));
    assert_eq!(status, 400);
    assert!(body.contains("bad_json"), "{body}");
    // Missing and ragged windows.
    let (status, _, body) =
        roundtrip(&server, &post("/v1/tenants/metr-la/forecast", "{\"x\": 1}"));
    assert_eq!(status, 400);
    assert!(body.contains("bad_window"), "{body}");
    let ragged = "{\"window\": [[[1.0, 2.0]], [[1.0, 2.0], [3.0, 4.0]]]}";
    let (status, _, body) =
        roundtrip(&server, &post("/v1/tenants/metr-la/forecast", ragged));
    assert_eq!(status, 400);
    assert!(body.contains("bad_window"), "{body}");

    // Counted as parse errors: the garbage request line, the bad
    // version, and the unparseable JSON (411/501 are well-formed
    // requests the server declines, not parse failures).
    let stats = server.stats();
    assert!(stats.parse_errors >= 3, "parse errors counted: {stats:?}");
    assert_eq!(stats.responses_2xx, 0);
}

#[test]
fn oversized_body_and_head_are_rejected() {
    let fx = Fixture::new("oversize");
    let (_tenants, server) = fx.serve(
        "metr-la",
        HttpConfig {
            max_body_bytes: 1024,
            max_header_bytes: 512,
            ..HttpConfig::default()
        },
    );
    // An honest Content-Length over the limit: rejected before the body
    // is even read.
    let (status, _, _) = roundtrip(
        &server,
        b"POST /v1/tenants/metr-la/forecast HTTP/1.1\r\nHost: t\r\n\
          Content-Length: 1000000\r\n\r\n",
    );
    assert_eq!(status, 413);
    // A head that never ends.
    let mut raw = b"GET /v1/healthz HTTP/1.1\r\n".to_vec();
    raw.extend_from_slice(format!("X-Padding: {}\r\n", "y".repeat(1024)).as_bytes());
    raw.extend_from_slice(b"\r\n");
    let (status, _, _) = roundtrip(&server, &raw);
    assert_eq!(status, 431);
}

#[test]
fn truncated_body_is_a_400_not_a_hang() {
    let fx = Fixture::new("truncated");
    let (_tenants, server) = fx.serve("metr-la", HttpConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Claim 1000 bytes, send 10, then close the write half.
    stream
        .write_all(
            b"POST /v1/tenants/metr-la/forecast HTTP/1.1\r\nHost: t\r\n\
              Content-Length: 1000\r\n\r\n{\"window\"",
        )
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("truncated"), "{body}");
}

#[test]
fn slowloris_request_times_out_with_408() {
    let fx = Fixture::new("slowloris");
    let (_tenants, server) = fx.serve(
        "metr-la",
        HttpConfig {
            read_timeout: Duration::from_millis(250),
            ..HttpConfig::default()
        },
    );
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // A header drip that never finishes.
    stream.write_all(b"GET /v1/healthz HTTP/1.1\r\nX-Slow: ").unwrap();
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 408);
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "slowloris guard took {:?}",
        t0.elapsed()
    );
    assert!(server.stats().timeouts >= 1);
}

#[test]
fn keep_alive_serves_pipelined_requests_in_order() {
    let fx = Fixture::new("pipeline");
    let (_tenants, server) = fx.serve("metr-la", HttpConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Three different requests written back-to-back before any read.
    let mut raw = Vec::new();
    raw.extend_from_slice(&post("/v1/tenants/metr-la/forecast", &fx.window_json(0)));
    raw.extend_from_slice(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    raw.extend_from_slice(&post("/v1/tenants/metr-la/forecast", &fx.window_json(1)));
    stream.write_all(&raw).unwrap();
    let mut carry = Vec::new();
    let (s1, h1, b1) = read_response_carry(&mut stream, &mut carry);
    let (s2, _h2, b2) = read_response_carry(&mut stream, &mut carry);
    let (s3, _h3, b3) = read_response_carry(&mut stream, &mut carry);
    assert_eq!((s1, s2, s3), (200, 200, 200), "{b1} | {b2} | {b3}");
    assert!(h1.contains("keep-alive"), "{h1}");
    assert!(b1.contains("prediction"));
    assert!(b2.contains("ok"));
    assert!(b3.contains("prediction"));
    // The two forecasts came from different windows — responses were not
    // crossed or duplicated.
    assert_ne!(b1, b3);
    assert_eq!(server.stats().requests, 3);

    // An explicit Connection: close is honored.
    let mut req = post("/v1/tenants/metr-la/forecast", &fx.window_json(0));
    let head_insert = "Connection: close\r\n";
    let pos = req.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 2;
    req.splice(pos..pos, head_insert.bytes());
    stream.write_all(&req).unwrap();
    let (s4, h4, _b4) = read_response_carry(&mut stream, &mut carry);
    assert_eq!(s4, 200);
    assert!(h4.contains("Connection: close"), "{h4}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server wrote past a closed response");
}

#[test]
fn killed_client_mid_response_does_not_wedge_the_server() {
    let fx = Fixture::new("killed");
    let (_tenants, server) = fx.serve("metr-la", HttpConfig::default());
    // A client that submits real work and vanishes without reading.
    for i in 0..4 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(&post("/v1/tenants/metr-la/forecast", &fx.window_json(i % 4)))
            .unwrap();
        // Vanish without reading the response.
        drop(stream);
    }
    // The server keeps serving new clients promptly.
    let t0 = Instant::now();
    let (status, _, body) = roundtrip(
        &server,
        &post("/v1/tenants/metr-la/forecast", &fx.window_json(0)),
    );
    assert_eq!(status, 200, "{body}");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "follow-up request took {:?}",
        t0.elapsed()
    );
}

/// Drain under load: concurrent keep-alive clients are mid-burst when
/// the server shuts down. Every response that goes out must be complete,
/// the drain must finish within a wall-clock budget, and the listener
/// must be gone afterwards.
#[test]
fn graceful_drain_under_load_within_budget() {
    let fx = Fixture::new("drain");
    let (_tenants, mut server) = fx.serve("metr-la", HttpConfig::default());
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut clients = Vec::new();
    for c in 0..4usize {
        let stop = Arc::clone(&stop);
        let body = fx.window_json(c % 4);
        clients.push(std::thread::spawn(move || {
            let mut served = 0u64;
            'outer: while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let Ok(mut stream) = TcpStream::connect(addr) else {
                    break;
                };
                let mut carry = Vec::new();
                // Keep-alive bursts on one connection.
                for _ in 0..32 {
                    if stream
                        .write_all(&post("/v1/tenants/metr-la/forecast", &body))
                        .is_err()
                    {
                        continue 'outer;
                    }
                    // A close mid-response during drain just ends this
                    // connection; a complete response must be 200 or a
                    // shed/drain 503.
                    let Ok((status, head, _body)) = try_read_response(&mut stream, &mut carry)
                    else {
                        continue 'outer;
                    };
                    assert!(
                        status == 200 || status == 503,
                        "unexpected status during drain: {status}"
                    );
                    if status == 200 {
                        served += 1;
                    }
                    if head.to_ascii_lowercase().contains("connection: close") {
                        continue 'outer;
                    }
                }
            }
            served
        }));
    }

    // Let the load establish, then drain while requests are in flight.
    std::thread::sleep(Duration::from_millis(300));
    let t0 = Instant::now();
    server.shutdown();
    let drain = t0.elapsed();
    assert!(
        drain < Duration::from_secs(10),
        "drain took {drain:?}, budget 10s"
    );

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let served: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(served > 0, "load never got going before the drain");

    // The listener is really gone: new connections are refused or reset,
    // never answered.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut buf = [0u8; 16];
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => {}
                Ok(n) => panic!(
                    "drained server answered: {:?}",
                    String::from_utf8_lossy(&buf[..n])
                ),
            }
        }
    }
}
