//! Work-stealing behavior: bitwise parity with stealing enabled, the
//! steal counters, strictly fewer sheds under skewed affinity load, and
//! drain correctness while thieves are active.

use std::sync::Arc;
use std::time::Duration;

use urcl_core::{CheckpointDir, TrainerConfig, UrclPipeline};
use urcl_serve::{
    forward_batch, BatchPolicy, ModelSnapshot, ServeConfig, ServeError, Tenants,
};
use urcl_stdata::{DatasetConfig, SyntheticDataset};
use urcl_tensor::Tensor;

struct Fx {
    ds: SyntheticDataset,
    dir: std::path::PathBuf,
    windows: Vec<Tensor>,
    refs: Vec<Tensor>,
}

impl Fx {
    fn new(tag: &str) -> Self {
        let ds = SyntheticDataset::generate(DatasetConfig::metr_la().tiny());
        let dir = std::env::temp_dir().join(format!("urcl-steal-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let slots = CheckpointDir::new(&dir).unwrap();
        let mut pipe = UrclPipeline::new(
            ds.network.clone(),
            ds.config.clone(),
            TrainerConfig::default(),
            7,
        );
        let series = ds.continual_split(2).base.series.clone();
        pipe.observe_period_statistics_only(&series);
        pipe.save_checkpoint(&slots, tag).unwrap();
        let m = ds.config.input_steps;
        let windows: Vec<Tensor> = (0..8).map(|i| series.narrow(0, i * 3, m)).collect();
        let (model, template) =
            UrclPipeline::serving_parts(&ds.network, &ds.config, &TrainerConfig::default());
        let snapshot =
            ModelSnapshot::from_checkpoint(&slots.load().unwrap(), &template, 1).unwrap();
        let refs = forward_batch(&model, &snapshot, &windows, ds.config.target_channel);
        Self {
            ds,
            dir,
            windows,
            refs,
        }
    }

    fn register(&self, registry: &Tenants, name: &str, config: ServeConfig) {
        let (model, template) = UrclPipeline::serving_parts_dyn(
            &self.ds.network,
            &self.ds.config,
            &TrainerConfig::default(),
        );
        let client = registry
            .add(
                name,
                model,
                template,
                CheckpointDir::new(&self.dir).unwrap(),
                config,
            )
            .expect("register tenant");
        assert!(client.has_snapshot());
    }
}

impl Drop for Fx {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn assert_bitwise_eq(a: &Tensor, b: &Tensor, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: element {i}: {x} vs {y}");
    }
}

/// Every client pins its requests to shard 0 via strict affinity while
/// three sibling shards sit idle: the siblings must steal (counters
/// prove it) and every stolen response must still be bitwise equal to
/// the solo forward — batch composition is unobservable in the bits.
#[test]
fn stolen_responses_are_bitwise_identical_to_solo_forwards() {
    let fx = Fx::new("parity");
    let registry = Tenants::new();
    fx.register(
        &registry,
        "hot",
        ServeConfig {
            policy: BatchPolicy {
                max_batch: 4,
                max_delay: Duration::from_millis(1),
            },
            target_channel: fx.ds.config.target_channel,
            shards: 4,
            queue_bound: 1024,
            steal: true,
            ..ServeConfig::default()
        },
    );
    let client = registry.client("hot").unwrap();

    const CLIENTS: usize = 12;
    const REQS: usize = 25;
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let client = client.clone();
        let windows = fx.windows.clone();
        let refs = fx.refs.clone();
        handles.push(std::thread::spawn(move || {
            for r in 0..REQS {
                let i = (c + r) % windows.len();
                // Affinity key 0: every request lands on shard 0 only.
                let forecast = client.predict_affine(0, &windows[i]).expect("served");
                assert_bitwise_eq(
                    &forecast.prediction,
                    &refs[i],
                    &format!("client {c} req {r}"),
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("no client panicked");
    }

    let stats = registry.stats("hot").unwrap();
    assert_eq!(stats.requests, (CLIENTS * REQS) as u64, "conservation");
    assert_eq!(stats.shed, 0, "generous bound must not shed");
    assert!(stats.max_batch <= 4, "stealing must respect the batch policy");
    assert!(
        stats.steals > 0,
        "three idle shards next to a hot one must steal; stats: {stats:?}"
    );
    assert!(
        stats.stolen >= stats.steals,
        "each steal moves at least one request; stats: {stats:?}"
    );
}

/// The shedding duel the bench gate mirrors: a paced burst pinned to one
/// shard while its worker holds a coalescing batch open. With stealing
/// off the bounded queue stays full and the burst sheds; with stealing
/// on, idle siblings drain it — strictly fewer sheds, and everything
/// admitted is still answered bitwise-correctly.
#[test]
fn stealing_sheds_strictly_less_under_affinity_skew() {
    let fx = Fx::new("duel");
    let config = |steal: bool| ServeConfig {
        policy: BatchPolicy {
            max_batch: 8,
            // Freeze the hot shard's own worker: it holds its batch open
            // far longer than the whole burst takes.
            max_delay: Duration::from_millis(400),
        },
        target_channel: fx.ds.config.target_channel,
        shards: 4,
        queue_bound: 2,
        steal,
        ..ServeConfig::default()
    };

    let run = |steal: bool| -> (usize, u64) {
        let registry = Tenants::new();
        fx.register(&registry, "duel", config(steal));
        let client = registry.client("duel").unwrap();
        let mut admitted = Vec::new();
        let mut shed = 0usize;
        for i in 0..40 {
            match client.submit_affine(0, fx.windows[i % fx.windows.len()].clone()) {
                Ok(pending) => admitted.push((i, pending)),
                Err(ServeError::Shed { tenant, depth }) => {
                    assert_eq!(tenant, "duel");
                    assert!(depth > 0 && depth <= 2, "shed depth {depth}");
                    shed += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            // Pace the burst so thieves get scheduler time to react.
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(admitted.len() + shed, 40, "conservation");
        for (i, pending) in admitted {
            let forecast = pending
                .wait_timeout(Duration::from_secs(60))
                .unwrap_or_else(|| panic!("admitted request {i} stranded"))
                .expect("served");
            assert_bitwise_eq(
                &forecast.prediction,
                &fx.refs[i % fx.refs.len()],
                &format!("request {i} steal={steal}"),
            );
        }
        let stats = registry.stats("duel").unwrap();
        assert_eq!(stats.shed, shed as u64);
        (shed, stats.steals)
    };

    let (sheds_off, steals_off) = run(false);
    let (sheds_on, steals_on) = run(true);
    assert_eq!(steals_off, 0, "stealing disabled must never steal");
    assert!(steals_on > 0, "idle siblings must steal during the burst");
    assert!(
        sheds_off > 0,
        "the frozen worker plus bound 2 must shed with stealing off"
    );
    assert!(
        sheds_on < sheds_off,
        "stealing must strictly reduce sheds: {sheds_on} vs {sheds_off}"
    );
}

/// Removing the tenant while thieves are mid-flight: every admitted
/// request is still answered (stealing never transfers drain
/// responsibility), and post-drain submits fail typed.
#[test]
fn drain_with_active_thieves_strands_no_request() {
    let fx = Fx::new("drain");
    for round in 0..4 {
        let registry = Arc::new(Tenants::new());
        fx.register(
            &registry,
            "drain",
            ServeConfig {
                policy: BatchPolicy {
                    max_batch: 4,
                    max_delay: Duration::from_millis(2),
                },
                target_channel: fx.ds.config.target_channel,
                shards: 4,
                queue_bound: 1024,
                steal: true,
                ..ServeConfig::default()
            },
        );
        let client = registry.client("drain").unwrap();
        // A skewed backlog: everything pinned to shard 0 so thieves are
        // guaranteed to be involved when the drain lands.
        let mut pending = Vec::new();
        for i in 0..64 {
            pending.push(
                client
                    .submit_affine(0, fx.windows[i % fx.windows.len()].clone())
                    .expect("admitted under generous bound"),
            );
        }
        // Sweep the drop point across the burst.
        std::thread::sleep(Duration::from_millis(round * 3));
        assert!(registry.remove("drain"), "tenant existed");
        for (i, p) in pending.into_iter().enumerate() {
            let forecast = p
                .wait_timeout(Duration::from_secs(60))
                .unwrap_or_else(|| panic!("round {round}: request {i} stranded by drain"))
                .expect("admitted requests are served, not dropped");
            assert_bitwise_eq(
                &forecast.prediction,
                &fx.refs[i % fx.refs.len()],
                &format!("round {round} request {i}"),
            );
        }
        match client.predict_affine(0, &fx.windows[0]) {
            Err(ServeError::ShuttingDown) => {}
            Ok(_) => panic!("round {round}: submit admitted after remove"),
            Err(e) => panic!("round {round}: wrong post-drain error {e}"),
        }
    }
}
