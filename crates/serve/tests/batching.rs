//! Batcher edge cases and the serving consistency guarantees:
//! empty-queue idling, bursts larger than `max_batch`, bitwise
//! batched-vs-single forwards, and snapshot hot-swap during a drain.

use std::sync::Arc;
use std::time::Duration;

use urcl_core::{CheckpointDir, TrainerConfig, UrclPipeline};
use urcl_serve::{forward_batch, BatchPolicy, ModelSnapshot, ServeConfig, ServeError, Server};
use urcl_stdata::{DatasetConfig, SyntheticDataset};
use urcl_tensor::Tensor;

/// A dataset, a checkpoint directory holding a full (v2) checkpoint from
/// a pipeline seeded with `seed`, and a few raw physical-unit windows.
struct Fixture {
    ds: SyntheticDataset,
    dir_path: std::path::PathBuf,
    slots: CheckpointDir,
    windows: Vec<Tensor>,
}

impl Fixture {
    /// No training: the checkpoint carries the pipeline's *initial*
    /// weights plus fitted normalizer statistics — everything serving
    /// needs, built in milliseconds.
    fn new(tag: &str, seed: u64) -> Self {
        let ds = SyntheticDataset::generate(DatasetConfig::metr_la().tiny());
        let dir_path = std::env::temp_dir().join(format!(
            "urcl-serve-test-{}-{tag}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir_path).ok();
        let slots = CheckpointDir::new(&dir_path).unwrap();
        let mut pipe = UrclPipeline::new(
            ds.network.clone(),
            ds.config.clone(),
            TrainerConfig::default(),
            seed,
        );
        let series = &ds.continual_split(2).base.series;
        pipe.observe_period_statistics_only(series);
        pipe.save_checkpoint(&slots, &format!("seed {seed}")).unwrap();

        let m = ds.config.input_steps;
        let windows = (0..20)
            .map(|i| series.narrow(0, i * 2, m))
            .collect();
        Self {
            ds,
            dir_path,
            slots,
            windows,
        }
    }

    fn server(&self, policy: BatchPolicy) -> Server {
        let (model, template) = UrclPipeline::serving_parts(
            &self.ds.network,
            &self.ds.config,
            &TrainerConfig::default(),
        );
        Server::start(
            model,
            template,
            CheckpointDir::new(&self.dir_path).unwrap(),
            ServeConfig {
                policy,
                target_channel: self.ds.config.target_channel,
                // One shard: these tests pin per-shard coalescing
                // behaviour (burst splits, full-batch fusion).
                shards: 1,
                ..ServeConfig::default()
            },
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir_path).ok();
    }
}

fn assert_bitwise_eq(a: &Tensor, b: &Tensor, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: element {i}: {x} vs {y}");
    }
}

/// An idle server (queue empty far longer than `max_delay`) must keep its
/// worker parked without spinning or dying, serve a late request
/// normally, and shut down cleanly from the idle state.
#[test]
fn empty_queue_idles_and_serves_late_request() {
    let fx = Fixture::new("idle", 1);
    let server = fx.server(BatchPolicy {
        max_batch: 4,
        max_delay: Duration::from_millis(1),
    });
    std::thread::sleep(Duration::from_millis(120));
    assert_eq!(server.stats().batches, 0, "idle worker must not run batches");
    let forecast = server.predict(&fx.windows[0]).expect("late request served");
    assert_eq!(
        forecast.prediction.shape(),
        &[fx.ds.config.output_steps, fx.ds.config.num_nodes]
    );
    assert_eq!(server.stats().batches, 1);
    drop(server); // clean shutdown with an empty queue must not hang
}

/// A burst larger than `max_batch` splits across consecutive batches; no
/// batch ever exceeds the policy and every request is answered in order.
#[test]
fn burst_larger_than_max_batch_splits() {
    let fx = Fixture::new("burst", 2);
    let max_batch = 4;
    let server = fx.server(BatchPolicy {
        max_batch,
        max_delay: Duration::from_millis(20),
    });
    let n = 2 * max_batch + 3; // 11 requests, forced across >= 3 batches
    let forecasts = server.predict_many(&fx.windows[..n]).expect("burst served");
    assert_eq!(forecasts.len(), n);
    let stats = server.stats();
    assert_eq!(stats.requests, n as u64);
    assert!(
        stats.max_batch <= max_batch as u64,
        "policy violated: batch of {} fused (max_batch {max_batch})",
        stats.max_batch
    );
    assert!(
        stats.batches >= n.div_ceil(max_batch) as u64,
        "{n} requests cannot fit in {} batches of {max_batch}",
        stats.batches
    );
    // Order is preserved: each response equals its window's solo forecast.
    for (window, forecast) in fx.windows[..n].iter().zip(&forecasts) {
        let solo = server.predict(window).unwrap();
        assert_bitwise_eq(&solo.prediction, &forecast.prediction, "burst order");
    }
}

/// The core batching invariant, tested on the pure forward path: one
/// batched forward over B windows is bitwise identical to B forwards of
/// batch one (the tensor runtime never reorders reductions).
#[test]
fn batched_forward_is_bitwise_equal_to_single_forwards() {
    let fx = Fixture::new("bitwise", 3);
    let (model, template) = UrclPipeline::serving_parts(
        &fx.ds.network,
        &fx.ds.config,
        &TrainerConfig::default(),
    );
    let ckpt = fx.slots.load().unwrap();
    let snapshot = ModelSnapshot::from_checkpoint(&ckpt, &template, 1).unwrap();
    let batch = &fx.windows[..8];
    let fused = forward_batch(&model, &snapshot, batch, fx.ds.config.target_channel);
    assert_eq!(fused.len(), batch.len());
    for (i, window) in batch.iter().enumerate() {
        let solo = forward_batch(
            &model,
            &snapshot,
            std::slice::from_ref(window),
            fx.ds.config.target_channel,
        );
        assert_bitwise_eq(&fused[i], &solo[0], &format!("window {i}"));
    }
}

/// The same invariant end-to-end: a coalesced full batch through the
/// server equals per-request forwards. `max_batch == len` and a generous
/// `max_delay` force the burst into exactly one fused batch.
#[test]
fn server_coalesces_full_batch_bitwise_equal_to_singles() {
    let fx = Fixture::new("coalesce", 4);
    let n = 6;
    let server = fx.server(BatchPolicy {
        max_batch: n,
        max_delay: Duration::from_millis(500),
    });
    let fused = server.predict_many(&fx.windows[..n]).expect("burst");
    let stats = server.stats();
    assert_eq!(stats.max_batch, n as u64, "burst did not coalesce into one batch");
    for (i, window) in fx.windows[..n].iter().enumerate() {
        let solo = server.predict(window).unwrap();
        assert_bitwise_eq(
            &fused[i].prediction,
            &solo.prediction,
            &format!("window {i}"),
        );
    }
}

/// Hot-swapping while a drain is in flight: requests hammered from many
/// threads during repeated A->B->A swaps must every one complete, carry a
/// valid generation, and bitwise-match the reference forecast of the
/// snapshot generation that served them — never a torn mix of the two.
#[test]
fn swap_during_drain_serves_consistent_snapshots() {
    let fx_a = Fixture::new("swap-a", 5);
    let fx_b = Fixture::new("swap-b", 6); // same arch, different weights
    let server = Arc::new(fx_a.server(BatchPolicy {
        max_batch: 3,
        max_delay: Duration::from_millis(1),
    }));

    // Reference forecasts per checkpoint, computed on the pure path.
    let (model, template) = UrclPipeline::serving_parts(
        &fx_a.ds.network,
        &fx_a.ds.config,
        &TrainerConfig::default(),
    );
    let snap_a =
        ModelSnapshot::from_checkpoint(&fx_a.slots.load().unwrap(), &template, 0).unwrap();
    let snap_b =
        ModelSnapshot::from_checkpoint(&fx_b.slots.load().unwrap(), &template, 0).unwrap();
    let target = fx_a.ds.config.target_channel;
    let windows: Vec<Tensor> = fx_a.windows[..4].to_vec();
    let ref_a = forward_batch(&model, &snap_a, &windows, target);
    let ref_b = forward_batch(&model, &snap_b, &windows, target);

    let workers: Vec<_> = (0..4)
        .map(|w| {
            let server = Arc::clone(&server);
            let windows = windows.clone();
            let ref_a = ref_a.clone();
            let ref_b = ref_b.clone();
            std::thread::spawn(move || {
                for round in 0..25 {
                    let i = (w + round) % windows.len();
                    let forecast = server.predict(&windows[i]).expect("request survived swap");
                    let matches_a = forecast.prediction.data().iter().zip(ref_a[i].data())
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    let matches_b = forecast.prediction.data().iter().zip(ref_b[i].data())
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(
                        matches_a || matches_b,
                        "worker {w} round {round}: forecast matches neither snapshot"
                    );
                }
            })
        })
        .collect();

    // Main thread: keep swapping A -> B -> A while the drain runs. Each
    // save changes `latest.ckpt`, each reload_now publishes it.
    let mut swapped = 0u64;
    for round in 0..12 {
        let src = if round % 2 == 0 { &fx_b.slots } else { &fx_a.slots };
        let text = std::fs::read_to_string(src.latest_path()).unwrap();
        std::fs::write(fx_a.slots.latest_path(), text).unwrap();
        if server.reload_now().expect("reload") {
            swapped += 1;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for worker in workers {
        worker.join().expect("no worker panicked");
    }
    assert!(swapped >= 2, "test never actually swapped ({swapped})");
    assert_eq!(server.stats().swaps, swapped + 1, "initial load + live swaps");
}

/// An `Arc` snapshot captured before a swap (as each in-flight batch
/// does) keeps producing old-generation forecasts after the swap — the
/// in-flight-requests-complete-on-the-old-snapshot guarantee.
#[test]
fn captured_snapshot_survives_hot_swap() {
    let fx_a = Fixture::new("inflight-a", 7);
    let fx_b = Fixture::new("inflight-b", 8);
    let server = fx_a.server(BatchPolicy::default());
    let (model, _template) = UrclPipeline::serving_parts(
        &fx_a.ds.network,
        &fx_a.ds.config,
        &TrainerConfig::default(),
    );
    let target = fx_a.ds.config.target_channel;

    let captured = server.snapshot().expect("initial snapshot");
    let before = forward_batch(&model, &captured, &fx_a.windows[..1], target);

    // The trainer publishes new weights; the server swaps.
    let text = std::fs::read_to_string(fx_b.slots.latest_path()).unwrap();
    std::fs::write(fx_a.slots.latest_path(), text).unwrap();
    assert!(server.reload_now().expect("reload"));
    assert_ne!(Some(captured.generation()), server.generation());

    // The captured Arc still serves the old weights, bit for bit.
    let after = forward_batch(&model, &captured, &fx_a.windows[..1], target);
    assert_bitwise_eq(&before[0], &after[0], "in-flight snapshot");

    // New requests see the new snapshot (different weights, different
    // forecast).
    let fresh = server.predict(&fx_a.windows[0]).unwrap();
    assert_ne!(fresh.prediction, before[0], "swap visible to new requests");
}

/// Geometry and lifecycle errors are typed, not panics.
#[test]
fn bad_requests_and_empty_directories_are_typed_errors() {
    let fx = Fixture::new("errors", 9);
    let server = fx.server(BatchPolicy::default());

    let wrong = Tensor::zeros(&[1, 2, 3]);
    assert!(matches!(
        server.predict(&wrong),
        Err(ServeError::BadRequest(_))
    ));

    // A server over an empty directory has no snapshot: requests fail
    // with NoSnapshot until a checkpoint appears.
    let empty_path = std::env::temp_dir().join(format!(
        "urcl-serve-test-{}-empty",
        std::process::id()
    ));
    std::fs::remove_dir_all(&empty_path).ok();
    let (model, template) = UrclPipeline::serving_parts(
        &fx.ds.network,
        &fx.ds.config,
        &TrainerConfig::default(),
    );
    let empty = Server::start(
        model,
        template,
        CheckpointDir::new(&empty_path).unwrap(),
        ServeConfig::default(),
    );
    assert!(!empty.has_snapshot());
    assert_eq!(empty.generation(), None);
    assert!(matches!(
        empty.predict(&fx.windows[0]),
        Err(ServeError::NoSnapshot)
    ));
    std::fs::remove_dir_all(&empty_path).ok();
}
