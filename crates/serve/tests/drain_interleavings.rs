//! Seeded interleaving enumeration for the submit/shutdown race.
//!
//! The seed runtime had a stranded-waiter bug: shutdown set an atomic
//! drain flag *outside* the queue mutex, so a submitter could observe
//! "not draining", enqueue, and have its wakeup signal land between the
//! worker's final drain and its exit — leaving the client blocked
//! forever. The fix moves the drain flag inside the queue mutex
//! (`shard.rs`): admission and drain are now ordered by one lock, so
//! every admitted request is answered and every late submit gets a typed
//! [`ServeError::ShuttingDown`].
//!
//! Std-only loom-style pinning: rather than one lucky schedule, we
//! enumerate 32 seeded interleavings. Each seed derives per-submitter
//! spin/sleep jitter and a different server-drop delay from the in-tree
//! xoshiro RNG, sweeping the drop point across the burst — before, in
//! the middle of, and after the submitters' work. Under the buggy
//! protocol several of these schedules strand a waiter (the 10s
//! `wait_timeout` fires); under the fixed one every handle resolves and
//! request conservation holds exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use urcl_core::{CheckpointDir, TrainerConfig, UrclPipeline};
use urcl_serve::{BatchPolicy, ServeConfig, ServeError, Server};
use urcl_stdata::{DatasetConfig, SyntheticDataset};
use urcl_tensor::{Rng, Tensor};

const SEEDS: u64 = 32;
const SUBMITTERS: usize = 4;
const REQS_PER_SUBMITTER: usize = 6;

struct Fx {
    ds: SyntheticDataset,
    dir: std::path::PathBuf,
    windows: Vec<Tensor>,
}

impl Fx {
    fn new() -> Self {
        let ds = SyntheticDataset::generate(DatasetConfig::metr_la().tiny());
        let dir = std::env::temp_dir().join(format!(
            "urcl-drain-interleave-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let slots = CheckpointDir::new(&dir).unwrap();
        let mut pipe = UrclPipeline::new(
            ds.network.clone(),
            ds.config.clone(),
            TrainerConfig::default(),
            42,
        );
        let series = ds.continual_split(2).base.series.clone();
        pipe.observe_period_statistics_only(&series);
        pipe.save_checkpoint(&slots, "drain").unwrap();
        let m = ds.config.input_steps;
        let windows = (0..4).map(|i| series.narrow(0, i * 2, m)).collect();
        Self { ds, dir, windows }
    }

    fn server(&self) -> Server {
        let (model, template) = UrclPipeline::serving_parts(
            &self.ds.network,
            &self.ds.config,
            &TrainerConfig::default(),
        );
        Server::start(
            model,
            template,
            CheckpointDir::new(&self.dir).unwrap(),
            ServeConfig {
                policy: BatchPolicy {
                    max_batch: 4,
                    max_delay: Duration::from_micros(200),
                },
                target_channel: self.ds.config.target_channel,
                shards: 1,
                queue_bound: 64,
                ..ServeConfig::default()
            },
        )
    }
}

impl Drop for Fx {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Seeded jitter: a mix of busy-spins (sub-microsecond, to hit the
/// lock-handoff windows) and short sleeps (to hit the coalescing and
/// drop windows).
fn jitter(rng: &mut Rng) {
    let r = rng.uniform();
    if r < 0.5 {
        for _ in 0..(r * 2_000.0) as u32 {
            std::hint::spin_loop();
        }
    } else {
        std::thread::sleep(Duration::from_micros((r * 600.0) as u64));
    }
}

#[test]
fn no_seeded_interleaving_strands_a_waiter() {
    let fx = Arc::new(Fx::new());
    for seed in 0..SEEDS {
        let server = fx.server();
        assert!(server.has_snapshot(), "seed {seed}: checkpoint must load");
        let client = server.client();

        let replied = Arc::new(AtomicU64::new(0));
        let shut_out = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();
        for s in 0..SUBMITTERS {
            let client = client.clone();
            let fx = Arc::clone(&fx);
            let (replied, shut_out, shed) =
                (Arc::clone(&replied), Arc::clone(&shut_out), Arc::clone(&shed));
            threads.push(std::thread::spawn(move || {
                let mut rng = Rng::seed_from_u64(seed * 97 + s as u64);
                for r in 0..REQS_PER_SUBMITTER {
                    jitter(&mut rng);
                    let window = fx.windows[(s + r) % fx.windows.len()].clone();
                    match client.submit(window) {
                        Ok(pending) => {
                            // The hard invariant: an accepted request is
                            // never stranded, no matter where the drop
                            // lands relative to this submit.
                            let outcome = pending
                                .wait_timeout(Duration::from_secs(10))
                                .unwrap_or_else(|| {
                                    panic!(
                                        "seed {seed} submitter {s} req {r}: \
                                         stranded waiter (drain protocol regression)"
                                    )
                                });
                            match outcome {
                                Ok(_) => replied.fetch_add(1, Ordering::Relaxed),
                                Err(ServeError::ShuttingDown) => {
                                    shut_out.fetch_add(1, Ordering::Relaxed)
                                }
                                Err(e) => panic!("seed {seed}: unexpected reply {e}"),
                            };
                        }
                        Err(ServeError::ShuttingDown) => {
                            shut_out.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Shed { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("seed {seed}: unexpected submit error {e}"),
                    }
                }
            }));
        }

        // Drop the server at a seed-dependent point in the burst: from
        // "immediately" (seed 0 sleeps ~0) to "after most submits".
        let mut drop_rng = Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        std::thread::sleep(Duration::from_micros(
            (drop_rng.uniform() * 4_000.0) as u64 * (seed % 4),
        ));
        drop(server);

        for t in threads {
            t.join().expect("submitter panicked");
        }
        // Conservation: every attempt terminated exactly one way.
        let total = replied.load(Ordering::Relaxed)
            + shut_out.load(Ordering::Relaxed)
            + shed.load(Ordering::Relaxed);
        assert_eq!(
            total,
            (SUBMITTERS * REQS_PER_SUBMITTER) as u64,
            "seed {seed}: request lost"
        );

        // A post-drop submit must fail typed, not hang or panic.
        match client.submit(fx.windows[0].clone()) {
            Err(ServeError::ShuttingDown) => {}
            Ok(_) => panic!("seed {seed}: submit admitted after drop"),
            Err(e) => panic!("seed {seed}: wrong post-drop error {e}"),
        }
    }
}
