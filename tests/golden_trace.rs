//! Golden-trace regression test: a fixed-seed tiny continual run with
//! tracing enabled must emit a `urcl-trace-v1` document with the expected
//! span tree, counters and period records, and must reproduce the pinned
//! final MAE. Catches silent schema drift in the trace exporter and
//! numeric drift in the pipeline in one place.
//!
//! Lives in its own integration binary because the trace recorder is
//! process-global state.

use urcl::core::{ContinualTrainer, StSimSiam, TrainerConfig};
use urcl::json::Value;
use urcl::models::{GraphWaveNet, GwnConfig};
use urcl::stdata::{ContinualSplit, DatasetConfig, SyntheticDataset};
use urcl::tensor::{ParamStore, Rng};
use urcl::trace;

/// Final-period MAE of the pinned run below (seed 31, 3 days, stride 16,
/// 1+1 epochs). Re-pin deliberately if the pipeline numerics change.
const GOLDEN_FINAL_MAE: f64 = 23.0244;
const GOLDEN_TOL: f64 = 0.5;

/// Span paths the trainer instrumentation must produce on every run,
/// whichever execution engine is active.
const REQUIRED_SPANS: &[&str] = &[
    "period",
    "period/epoch",
    "period/epoch/step",
    "period/epoch/step/optim",
    "period/epoch/step/replay",
    "period/epoch/step/replay/rmir",
    "period/epoch/step/replay/rmir/virtual_update",
    "period/eval",
];

/// Spans of the plan engine's step path (compile once, replay every step).
const PLAN_SPANS: &[&str] = &[
    "period/epoch/step/plan_compile",
    "period/epoch/step/plan_compile/encode",
    "period/epoch/step/plan_compile/decode",
    "period/epoch/step/plan_exec",
];

/// Spans of the interpreter's step path (`URCL_PLAN=0`).
const INTERP_SPANS: &[&str] = &[
    "period/epoch/step/forward",
    "period/epoch/step/forward/encode",
    "period/epoch/step/forward/decode",
    "period/epoch/step/backward",
];

#[test]
fn traced_pipeline_matches_golden_schema_and_mae() {
    let mut cfg = DatasetConfig::metr_la().tiny();
    cfg.num_days = 3;
    let dataset = SyntheticDataset::generate(cfg);
    let normalizer = dataset.fit_normalizer();
    let raw = dataset.continual_split(2);
    let split = ContinualSplit {
        base: raw.base.normalized(&normalizer),
        incremental: raw
            .incremental
            .iter()
            .map(|p| p.normalized(&normalizer))
            .collect(),
    };
    let scale = normalizer.scale(dataset.config.target_channel);

    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(31);
    let mut gcfg = GwnConfig::small(
        dataset.config.num_nodes,
        dataset.config.num_channels(),
        dataset.config.input_steps,
        dataset.config.output_steps,
    );
    gcfg.layers = 2;
    let model = GraphWaveNet::new(&mut store, &mut rng, &dataset.network, gcfg);
    let simsiam = StSimSiam::new(&mut store, &mut rng, 32, 32, 0.5);

    trace::reset();
    trace::enable();
    let tcfg = TrainerConfig {
        epochs_base: 1,
        epochs_incremental: 1,
        window_stride: 16,
        ..TrainerConfig::default()
    };
    let mut trainer = ContinualTrainer::new(tcfg);
    let report = trainer.run(
        &model,
        Some(&simsiam),
        &mut store,
        &dataset.network,
        &split,
        &dataset.config,
        scale,
    );
    trace::disable();
    let doc = trace::snapshot();

    // --- schema ---
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(trace::SCHEMA)
    );
    for key in ["threads", "spans", "counters", "gauges", "histograms", "periods", "pool", "plan"] {
        assert!(doc.get(key).is_some(), "missing top-level key {key}");
    }
    // Round-trips through the in-tree parser without loss.
    let text = doc.to_string_pretty();
    assert_eq!(Value::parse(&text).expect("trace JSON reparses"), doc);

    // --- span tree ---
    let spans = doc.get("spans").expect("spans");
    let engine_spans = if urcl::tensor::plan_enabled() {
        PLAN_SPANS
    } else {
        INTERP_SPANS
    };
    for path in REQUIRED_SPANS.iter().chain(engine_spans) {
        let sp = spans
            .get(path)
            .unwrap_or_else(|| panic!("missing span {path}"));
        let count = sp.get("count").and_then(Value::as_u64).unwrap_or(0);
        assert!(count > 0, "span {path} never entered");
        let total = sp.get("total_seconds").and_then(Value::as_f64).unwrap();
        let mean = sp.get("mean_seconds").and_then(Value::as_f64).unwrap();
        assert!(total >= 0.0 && mean >= 0.0);
    }

    // --- counters and gauges ---
    let counters = doc.get("counters").expect("counters");
    let steps = counters.get("train.steps").and_then(Value::as_u64).unwrap_or(0);
    assert!(steps > 0, "no training steps counted");
    assert!(
        counters.get("replay.sampled").and_then(Value::as_u64).unwrap_or(0) > 0,
        "replay sampling not counted"
    );
    assert!(
        doc.get("gauges")
            .and_then(|g| g.get("replay.occupancy"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            > 0.0,
        "replay occupancy gauge not set"
    );

    // --- buffer-pool telemetry: populated by the traced training run ---
    let pool = doc.get("pool").expect("pool");
    for key in ["pool_hit", "pool_miss", "pool_bytes_recycled", "pool_peak_resident_f32"] {
        let v = pool.get(key).and_then(Value::as_f64);
        assert!(
            v.is_some_and(|v| v >= 0.0),
            "pool counter {key} missing or negative: {v:?}"
        );
    }
    assert!(
        pool.get("pool_hit").and_then(Value::as_u64).unwrap() > 0,
        "training with pooling on should recycle buffers"
    );
    assert!(
        pool.get("pool_peak_resident_f32").and_then(Value::as_u64).unwrap() > 0,
        "peak resident watermark never moved"
    );

    // --- plan-engine telemetry: the traced run evaluates through
    // compiled plans whenever the engine is on, so the counters must
    // show real compiles and strictly more replays than compiles ---
    let plan = doc.get("plan").expect("plan");
    for key in [
        "compiles",
        "replays",
        "fused_stages",
        "dead_edges_skipped",
        "buffer_moves",
        "values_dropped",
        "cache_entries",
        "cache_evictions",
    ] {
        assert!(
            plan.get(key).and_then(Value::as_u64).is_some(),
            "plan counter {key} missing"
        );
    }
    if urcl::tensor::plan_enabled() {
        let compiles = plan.get("compiles").and_then(Value::as_u64).unwrap();
        let replays = plan.get("replays").and_then(Value::as_u64).unwrap();
        assert!(compiles > 0, "plan engine on but nothing compiled");
        assert!(
            replays >= compiles,
            "every compiled plan should replay at least once ({replays} vs {compiles})"
        );
        // Batch-polymorphic plans keep the trainer cache at one entry per
        // architecture×config; the LRU bound is 8 entries either way.
        let entries = plan.get("cache_entries").and_then(Value::as_u64).unwrap();
        assert!(
            (1..=8).contains(&entries),
            "trainer plan cache not bounded: {entries} entries"
        );
    }

    // --- period records: one per streaming set, fields populated ---
    let periods = doc.get("periods").and_then(Value::as_array).expect("periods");
    assert_eq!(periods.len(), report.sets.len());
    assert_eq!(periods.len(), 3);
    for (p, set) in periods.iter().zip(&report.sets) {
        assert_eq!(
            p.get("name").and_then(Value::as_str),
            Some(set.name.as_str())
        );
        let mae = p.get("mae").and_then(Value::as_f64).unwrap();
        assert!((mae - set.mae as f64).abs() < 1e-6);
        assert!(p.get("rmse").and_then(Value::as_f64).unwrap() >= mae * 0.99);
        assert!(p.get("mape").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(p.get("replay_len").and_then(Value::as_u64).is_some());
        assert!(p.get("rmir_selected").and_then(Value::as_u64).is_some());
    }

    // --- golden MAE: fixed seeds must reproduce the pinned value ---
    let final_mae = periods.last().unwrap().get("mae").and_then(Value::as_f64).unwrap();
    assert!(
        (final_mae - GOLDEN_FINAL_MAE).abs() < GOLDEN_TOL,
        "final MAE {final_mae} drifted from golden {GOLDEN_FINAL_MAE} (tol {GOLDEN_TOL})"
    );
}
