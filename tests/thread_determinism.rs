//! Thread-count determinism: the continual pipeline must produce
//! bitwise-identical losses and final parameters whether the tensor pool
//! runs on one worker or four (`URCL_THREADS=1` vs `URCL_THREADS=4`).
//!
//! The parallel runtime partitions work into fixed chunks and each output
//! element is written by exactly one worker, so results may not depend on
//! the thread count. This is the in-process equivalent of re-running the
//! binary under different `URCL_THREADS` settings; it lives in its own
//! integration binary because [`urcl::tensor::set_threads`] mutates
//! process-global state.

use urcl::core::{ContinualTrainer, StSimSiam, TrainerConfig};
use urcl::models::{GraphWaveNet, GwnConfig};
use urcl::stdata::{ContinualSplit, DatasetConfig, SyntheticDataset};
use urcl::tensor::{set_threads, ParamStore, Rng};

/// Runs a tiny fixed-seed continual pipeline and returns the per-period
/// loss curves plus every final parameter value.
fn run_pipeline() -> (Vec<Vec<f32>>, Vec<(String, Vec<f32>)>) {
    let mut cfg = DatasetConfig::metr_la().tiny();
    cfg.num_days = 3;
    let dataset = SyntheticDataset::generate(cfg);
    let normalizer = dataset.fit_normalizer();
    let raw = dataset.continual_split(2);
    let split = ContinualSplit {
        base: raw.base.normalized(&normalizer),
        incremental: raw
            .incremental
            .iter()
            .map(|p| p.normalized(&normalizer))
            .collect(),
    };
    let scale = normalizer.scale(dataset.config.target_channel);

    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(21);
    let mut gcfg = GwnConfig::small(
        dataset.config.num_nodes,
        dataset.config.num_channels(),
        dataset.config.input_steps,
        dataset.config.output_steps,
    );
    gcfg.layers = 2;
    let model = GraphWaveNet::new(&mut store, &mut rng, &dataset.network, gcfg);
    let simsiam = StSimSiam::new(&mut store, &mut rng, 32, 32, 0.5);

    let tcfg = TrainerConfig {
        epochs_base: 1,
        epochs_incremental: 1,
        window_stride: 16,
        ..TrainerConfig::default()
    };
    let mut trainer = ContinualTrainer::new(tcfg);
    let report = trainer.run(
        &model,
        Some(&simsiam),
        &mut store,
        &dataset.network,
        &split,
        &dataset.config,
        scale,
    );

    let losses = report.sets.iter().map(|s| s.loss_curve.clone()).collect();
    let params = store
        .ids()
        .map(|id| (store.name(id).to_string(), store.value(id).data().to_vec()))
        .collect();
    (losses, params)
}

#[test]
fn single_and_multi_threaded_runs_match_bitwise() {
    let prev = set_threads(1);
    let (losses_1, params_1) = run_pipeline();
    set_threads(4);
    let (losses_4, params_4) = run_pipeline();
    set_threads(prev);

    assert_eq!(
        losses_1, losses_4,
        "loss curves differ between 1 and 4 threads"
    );
    assert_eq!(params_1.len(), params_4.len());
    for ((name_1, vals_1), (name_4, vals_4)) in params_1.iter().zip(&params_4) {
        assert_eq!(name_1, name_4);
        // Bitwise comparison: f32 equality is exact here by design.
        assert_eq!(vals_1, vals_4, "parameter {name_1} diverged across thread counts");
    }
}
