//! End-to-end integration test: the full URCL pipeline — data generation,
//! normalization, streaming splits, GraphWaveNet + STSimSiam, replay +
//! RMIR + STMixup + augmentation — on a tiny dataset.
//!
//! Each scenario runs at two scales: a shrunk stream (4 days, coarse
//! window stride) that keeps the debug-mode suite fast, and the original
//! full-size run gated behind `#[ignore]`. The ignored variants prove the
//! same properties on 2.5× more data; run them with
//! `cargo test --test end_to_end -- --ignored` (or `--include-ignored`).

use urcl::core::{ContinualTrainer, Strategy, StSimSiam, TrainerConfig};
use urcl::models::{Backbone, GraphWaveNet, GwnConfig};
use urcl::stdata::{ContinualSplit, DatasetConfig, SyntheticDataset};
use urcl::tensor::{ParamStore, Rng};

fn tiny_context_days(num_days: usize) -> (SyntheticDataset, ContinualSplit, f32) {
    let mut cfg = DatasetConfig::metr_la().tiny();
    cfg.num_days = num_days;
    let dataset = SyntheticDataset::generate(cfg);
    let normalizer = dataset.fit_normalizer();
    let raw = dataset.continual_split(2);
    let split = ContinualSplit {
        base: raw.base.normalized(&normalizer),
        incremental: raw
            .incremental
            .iter()
            .map(|p| p.normalized(&normalizer))
            .collect(),
    };
    let scale = normalizer.scale(dataset.config.target_channel);
    (dataset, split, scale)
}

fn build_gwn(dataset: &SyntheticDataset, seed: u64) -> (ParamStore, GraphWaveNet, StSimSiam) {
    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(seed);
    let mut cfg = GwnConfig::small(
        dataset.config.num_nodes,
        dataset.config.num_channels(),
        dataset.config.input_steps,
        dataset.config.output_steps,
    );
    cfg.layers = 2;
    let model = GraphWaveNet::new(&mut store, &mut rng, &dataset.network, cfg);
    let simsiam = StSimSiam::new(&mut store, &mut rng, 32, 32, 0.5);
    (store, model, simsiam)
}

fn check_full_pipeline(num_days: usize, window_stride: usize) {
    let (dataset, split, scale) = tiny_context_days(num_days);
    let (mut store, model, simsiam) = build_gwn(&dataset, 1);
    let cfg = TrainerConfig {
        epochs_base: 3,
        epochs_incremental: 1,
        window_stride,
        ..TrainerConfig::default()
    };
    let mut trainer = ContinualTrainer::new(cfg);
    let report = trainer.run(
        &model,
        Some(&simsiam),
        &mut store,
        &dataset.network,
        &split,
        &dataset.config,
        scale,
    );

    // One report per streaming period, all finite, RMSE >= MAE.
    assert_eq!(report.sets.len(), 3);
    for set in &report.sets {
        assert!(set.mae.is_finite() && set.mae > 0.0, "{set:?}");
        assert!(set.rmse >= set.mae * 0.99, "{set:?}");
        assert!(set.infer_seconds_per_obs > 0.0);
    }
    // Training happened and losses decreased within the base set.
    let base = &report.sets[0];
    assert_eq!(base.epochs, 3);
    let curve = &base.loss_curve;
    assert!(
        curve.last().unwrap() < curve.first().unwrap(),
        "base-set loss did not decrease: {curve:?}"
    );
    // Replay buffer saw data.
    assert!(!trainer.buffer().is_empty());
    // Error should be far below the trivially-wrong range (~the channel
    // range). Speed range is 65; an untrained model sits around 25+.
    assert!(
        report.sets.last().unwrap().mae < 20.0,
        "final MAE implausibly high: {}",
        report.sets.last().unwrap().mae
    );
}

#[test]
fn urcl_full_pipeline_learns_and_reports() {
    check_full_pipeline(4, 10);
}

/// Original full-size run (~10 days of data; slow in debug builds).
#[test]
#[ignore = "full-size stream; run with cargo test --test end_to_end -- --ignored"]
fn urcl_full_pipeline_learns_and_reports_full() {
    check_full_pipeline(10, 8);
}

fn check_urcl_beats_one_fit_all(num_days: usize, window_stride: usize) {
    let (dataset, split, scale) = tiny_context_days(num_days);

    let run = |strategy: Strategy| -> f32 {
        let (mut store, model, simsiam) = build_gwn(&dataset, 5);
        let needs_ssl = strategy == Strategy::Urcl;
        let cfg = TrainerConfig {
            strategy,
            epochs_base: 2,
            epochs_incremental: 1,
            window_stride,
            ..TrainerConfig::default()
        };
        let mut trainer = ContinualTrainer::new(cfg);
        trainer
            .run(
                &model,
                needs_ssl.then_some(&simsiam),
                &mut store,
                &dataset.network,
                &split,
                &dataset.config,
                scale,
            )
            .incremental_mae()
    };

    let urcl = run(Strategy::Urcl);
    let one_fit_all = run(Strategy::OneFitAll);
    // The static model cannot track regime drift; URCL must do better on
    // the incremental sets (generous margin keeps this robust to seeds).
    assert!(
        urcl < one_fit_all * 1.05,
        "URCL ({urcl}) should not lose clearly to OneFitAll ({one_fit_all})"
    );
}

#[test]
fn urcl_beats_one_fit_all_on_drifted_stream() {
    check_urcl_beats_one_fit_all(4, 10);
}

/// Original full-size comparison (slow in debug builds).
#[test]
#[ignore = "full-size stream; run with cargo test --test end_to_end -- --ignored"]
fn urcl_beats_one_fit_all_on_drifted_stream_full() {
    check_urcl_beats_one_fit_all(10, 8);
}

#[test]
fn deterministic_given_seeds() {
    let (dataset, split, scale) = tiny_context_days(4);
    let run = || -> Vec<f32> {
        let (mut store, model, simsiam) = build_gwn(&dataset, 9);
        let cfg = TrainerConfig {
            epochs_base: 1,
            epochs_incremental: 1,
            window_stride: 10,
            ..TrainerConfig::default()
        };
        let mut trainer = ContinualTrainer::new(cfg);
        trainer
            .run(
                &model,
                Some(&simsiam),
                &mut store,
                &dataset.network,
                &split,
                &dataset.config,
                scale,
            )
            .sets
            .iter()
            .map(|s| s.mae)
            .collect()
    };
    assert_eq!(run(), run(), "same seeds must reproduce the same run");
}

#[test]
fn shared_encoder_between_prediction_and_simsiam() {
    // The STEncoder must be *the same parameters* for the prediction head
    // and the STSimSiam branches: training the SSL loss alone must change
    // the prediction output.
    use urcl::core::Augmentation;
    use urcl::tensor::autodiff::{Session, Tape};
    use urcl::tensor::{Adam, Optimizer};

    let (dataset, split, _) = tiny_context_days(4);
    let (mut store, model, simsiam) = build_gwn(&dataset, 13);
    let windows = split.base.windows(&dataset.config);
    let batch = urcl::stdata::stack_samples(&windows[..4]);

    let predict = |store: &ParamStore| {
        let tape = Tape::new();
        let mut sess = Session::new(&tape, store);
        let x = sess.input(batch.x.clone());
        model.forward(&mut sess, x).value()
    };
    let before = predict(&store);

    // One SSL-only step.
    let mut rng = Rng::seed_from_u64(99);
    let (a1, a2) = Augmentation::sample_two(&mut rng);
    let v1 = a1.apply(&batch.x, &dataset.network, 2, &mut rng);
    let v2 = a2.apply(&batch.x, &dataset.network, 2, &mut rng);
    store.zero_grads();
    let tape = Tape::new();
    let mut sess = Session::new(&tape, &store);
    let loss = simsiam.loss(&mut sess, &model, &v1, &v2);
    let grads = tape.backward(loss);
    let binds = sess.into_bindings();
    store.accumulate_grads(&binds, &grads);
    let mut opt = Adam::new(0.01);
    opt.step(&mut store);

    let after = predict(&store);
    let diff: f32 = before
        .data()
        .iter()
        .zip(after.data())
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(
        diff > 1e-6,
        "SSL step did not move the prediction — encoder not shared"
    );
}
