//! Augmented-SSL plan parity: the paper-default training step (task MAE
//! + weighted GraphCL term over two augmentation draws) must produce
//! bitwise-identical results whether it re-records a tape every step
//! (interpreter) or replays ONE compiled batch-polymorphic plan whose
//! promoted input slots (view tensors, per-view graph supports,
//! contrastive masks) are rebound per draw.
//!
//! Two layers of coverage:
//!
//! 1. A full tiny URCL streaming run with augmentation ON, executed once
//!    per engine (`set_plan(true)` vs `set_plan(false)`): period reports
//!    and final parameters must agree bit for bit.
//! 2. A direct record-vs-replay sweep churning augmentation draws, batch
//!    sizes (poly replay) and architectures (two models alternating),
//!    asserting the loss parity at every point AND that the whole sweep
//!    costs exactly one plan compile per architecture.
//!
//! Lives in its own integration binary because the engine switch is
//! process-global.

use urcl::core::{Ablation, Augmentation, AugmentedView, ContinualTrainer, StSimSiam, TrainerConfig};
use urcl::graph::{random_geometric, SupportSet};
use urcl::models::{Backbone, GraphWaveNet, GwnConfig};
use urcl::stdata::{stack_samples, Batch, ContinualSplit, DatasetConfig, Sample, SyntheticDataset};
use urcl::tensor::autodiff::{Session, Tape};
use urcl::tensor::{
    plan_stats, set_plan, ExecPlan, ParamStore, PlanSpec, PolySpec, Rng, Tensor,
};

const SSL_WEIGHT: f32 = 0.05;
const K_DIFFUSION: usize = 2;
const NODES: usize = 12;
const STEPS: usize = 8;
const CHANNELS: usize = 2;

// ---------------------------------------------------------------------
// Layer 1: full streaming run, plan engine vs interpreter.
// ---------------------------------------------------------------------

struct RunResult {
    maes: Vec<u32>,
    losses: Vec<u32>,
    params: Vec<u32>,
}

/// One complete augmented tiny URCL run under the given engine; returns
/// every observable as raw bits.
fn full_run(plan_on: bool) -> RunResult {
    let prev = set_plan(plan_on);
    let mut cfg = DatasetConfig::metr_la().tiny();
    cfg.num_days = 3;
    let dataset = SyntheticDataset::generate(cfg);
    let normalizer = dataset.fit_normalizer();
    let raw = dataset.continual_split(2);
    let split = ContinualSplit {
        base: raw.base.normalized(&normalizer),
        incremental: raw
            .incremental
            .iter()
            .map(|p| p.normalized(&normalizer))
            .collect(),
    };
    let scale = normalizer.scale(dataset.config.target_channel);

    let mut store = ParamStore::new();
    let mut rng = Rng::seed_from_u64(47);
    let mut gcfg = GwnConfig::small(
        dataset.config.num_nodes,
        dataset.config.num_channels(),
        dataset.config.input_steps,
        dataset.config.output_steps,
    );
    gcfg.layers = 2;
    let model = GraphWaveNet::new(&mut store, &mut rng, &dataset.network, gcfg);
    let simsiam = StSimSiam::new(&mut store, &mut rng, 32, 32, 0.5);
    let mut trainer = ContinualTrainer::new(TrainerConfig {
        epochs_base: 1,
        epochs_incremental: 1,
        window_stride: 6,
        buffer_capacity: 16,
        rmir_pool: 8,
        rmir_candidates: 4,
        seed: 47,
        ablation: Ablation {
            augmentation: true,
            ..Ablation::default()
        },
        ..TrainerConfig::default()
    });
    let report = trainer.run(
        &model,
        Some(&simsiam),
        &mut store,
        &dataset.network,
        &split,
        &dataset.config,
        scale,
    );
    set_plan(prev);

    let mut params = Vec::new();
    for id in store.ids() {
        params.extend(store.value(id).data().iter().map(|v| v.to_bits()));
    }
    RunResult {
        maes: report.sets.iter().map(|s| s.mae.to_bits()).collect(),
        losses: report
            .sets
            .iter()
            .flat_map(|s| s.loss_curve.iter().map(|v| v.to_bits()))
            .collect(),
        params,
    }
}

#[test]
fn augmented_run_is_bitwise_identical_across_engines() {
    let on = full_run(true);
    let off = full_run(false);
    assert_eq!(on.maes, off.maes, "period MAEs diverged across engines");
    assert_eq!(on.losses, off.losses, "loss curves diverged across engines");
    assert_eq!(
        on.params.len(),
        off.params.len(),
        "parameter counts diverged"
    );
    assert_eq!(on.params, off.params, "final parameters diverged across engines");
}

// ---------------------------------------------------------------------
// Layer 2: direct record-vs-replay sweep with draw/batch/arch churn.
// ---------------------------------------------------------------------

struct Arch {
    store: ParamStore,
    model: GraphWaveNet,
    simsiam: StSimSiam,
}

fn make_arch(net: &urcl::graph::SensorNetwork, layers: usize, seed: u64) -> Arch {
    let mut rng = Rng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let mut cfg = GwnConfig::small(NODES, CHANNELS, STEPS, 1);
    cfg.layers = layers;
    let latent = cfg.base.latent;
    let model = GraphWaveNet::new(&mut store, &mut rng, net, cfg);
    let simsiam = StSimSiam::new(&mut store, &mut rng, latent, latent, 0.5);
    Arch {
        store,
        model,
        simsiam,
    }
}

fn make_batch(rng: &mut Rng, b: usize) -> Batch {
    let samples: Vec<Sample> = (0..b)
        .map(|_| Sample {
            x: rng.uniform_tensor(&[STEPS, NODES, CHANNELS], 0.0, 1.0),
            y: rng.uniform_tensor(&[1, NODES], 0.0, 1.0),
        })
        .collect();
    stack_samples(&samples)
}

struct RecordedSsl {
    tape: Tape,
    root: usize,
    inputs: Vec<usize>,
    binds: Vec<(urcl::tensor::ParamId, usize)>,
    view_slots: usize,
}

/// Records the augmented step graph and collects the promoted input
/// slots in the trainer's binding order: `[x, y, x1, x2, eye, off_mask,
/// view-1 supports…, view-2 supports…]`.
fn record_ssl(
    arch: &Arch,
    x: &Tensor,
    y: &Tensor,
    v1: &AugmentedView,
    v2: &AugmentedView,
) -> RecordedSsl {
    let tape = Tape::new();
    let (root, inputs, binds, view_slots);
    {
        let mut sess = Session::new(&tape, &arch.store);
        let xv = sess.input(x.clone());
        let yv = sess.input(y.clone());
        let x1 = sess.input(v1.x.clone());
        let x2 = sess.input(v2.x.clone());
        let mut ins = vec![xv.index(), yv.index(), x1.index(), x2.index()];
        let task = arch.model.forward(&mut sess, xv).sub(yv).abs().mean_all();
        let ssl = arch.simsiam.loss_from_vars(
            &mut sess,
            &arch.model,
            x1,
            v1.supports.as_ref(),
            x2,
            v2.supports.as_ref(),
        );
        let total = task.add(ssl.scale(SSL_WEIGHT));
        ins.extend(sess.slot_nodes("ssl.eye"));
        ins.extend(sess.slot_nodes("ssl.off_mask"));
        let s1 = sess.slot_nodes_prefix("ssl.v1.");
        let s2 = sess.slot_nodes_prefix("ssl.v2.");
        assert_eq!(s1.len(), s2.len(), "view support slot counts differ");
        view_slots = s1.len();
        ins.extend(s1);
        ins.extend(s2);
        root = total.index();
        inputs = ins;
        binds = sess.into_bindings();
    }
    RecordedSsl {
        tape,
        root,
        inputs,
        binds,
        view_slots,
    }
}

/// Compiles one batch-polymorphic plan for the architecture's augmented
/// step (recorded at `b0` and over zero proxies at `b0 + 1`).
fn compile_ssl(arch: &Arch, batch: &Batch, v1: &AugmentedView, v2: &AugmentedView) -> (ExecPlan, usize) {
    let b0 = batch.x.shape()[0];
    let rec0 = record_ssl(arch, &batch.x, &batch.y, v1, v2);
    let mut xs = batch.x.shape().to_vec();
    let mut ys = batch.y.shape().to_vec();
    xs[0] = b0 + 1;
    ys[0] = b0 + 1;
    let rec1 = record_ssl(
        arch,
        &Tensor::zeros(&xs),
        &Tensor::zeros(&ys),
        &v1.shape_proxy(b0 + 1),
        &v2.shape_proxy(b0 + 1),
    );
    let plan = ExecPlan::compile(
        &rec0.tape,
        &PlanSpec {
            root: Some(rec0.root),
            inputs: &rec0.inputs,
            outputs: &[],
            bindings: &rec0.binds,
            poly: Some(PolySpec {
                tape: &rec1.tape,
                batch0: b0,
                batch1: b0 + 1,
            }),
        },
    );
    (plan, rec0.view_slots)
}

/// Interpreter reference loss for one draw (no parameter update).
fn interp_loss(arch: &Arch, batch: &Batch, v1: &AugmentedView, v2: &AugmentedView) -> f32 {
    let rec = record_ssl(arch, &batch.x, &batch.y, v1, v2);
    rec.tape.value_at(rec.root).item()
}

fn ssl_refs<'a>(
    batch: &'a Batch,
    v1: &'a AugmentedView,
    v2: &'a AugmentedView,
    eye: &'a Tensor,
    off: &'a Tensor,
    view_slots: usize,
    template: Option<&'a SupportSet>,
) -> Vec<&'a Tensor> {
    let mut refs = vec![&batch.x, &batch.y, &v1.x, &v2.x, eye, off];
    for v in [v1, v2] {
        let set = v
            .supports
            .as_ref()
            .or(template)
            .expect("backbone exposes no support template");
        let sup = set.all();
        for j in 0..view_slots {
            refs.push(sup[j % sup.len()]);
        }
    }
    refs
}

#[test]
fn one_plan_per_arch_serves_every_draw_and_batch_size() {
    let mut rng = Rng::seed_from_u64(53);
    let net = random_geometric(NODES, 0.4, &mut rng);
    let archs = [make_arch(&net, 1, 7), make_arch(&net, 2, 11)];

    // Batch sizes churn around the recorded size 4; SSL batches of 1 are
    // a structurally different graph and stay on the interpreter, so the
    // poly sweep starts at 2.
    let sizes = [4usize, 3, 2, 5, 4];
    let batches: Vec<Batch> = sizes.iter().map(|&b| make_batch(&mut rng, b)).collect();
    let draws: Vec<(AugmentedView, AugmentedView)> = batches
        .iter()
        .map(|batch| {
            let (a1, a2) = Augmentation::sample_two(&mut rng);
            (
                a1.apply(&batch.x, &net, K_DIFFUSION, &mut rng),
                a2.apply(&batch.x, &net, K_DIFFUSION, &mut rng),
            )
        })
        .collect();

    let compiles_before = plan_stats().compiles;
    let plans: Vec<(ExecPlan, usize)> = archs
        .iter()
        .map(|arch| compile_ssl(arch, &batches[0], &draws[0].0, &draws[0].1))
        .collect();
    let compiled = plan_stats().compiles - compiles_before;
    assert_eq!(compiled, 2, "expected one plan compile per architecture");
    for (plan, _) in &plans {
        assert!(plan.is_poly(), "augmented step failed to compile batch-polymorphically");
    }

    // Arch-churn sweep: alternate architectures per (batch, draw) point.
    // Every point must match the interpreter bitwise, through one plan
    // per architecture and zero further compiles.
    for (i, (batch, (v1, v2))) in batches.iter().zip(&draws).enumerate() {
        for (ai, arch) in archs.iter().enumerate() {
            let (plan, view_slots) = &plans[ai];
            let (eye, off) = StSimSiam::contrastive_masks(batch.x.shape()[0]);
            let template = arch.model.support_template();
            let refs = ssl_refs(batch, v1, v2, &eye, &off, *view_slots, template);
            assert!(
                plan.accepts(&refs),
                "arch {ai} plan rejected batch size {} at point {i}",
                batch.x.shape()[0]
            );
            let (loss, _grads) = plan.run_training(&arch.store, &refs);
            let reference = interp_loss(arch, batch, v1, v2);
            assert_eq!(
                loss.item().to_bits(),
                reference.to_bits(),
                "arch {ai} point {i} (batch {}) replay diverged from interpreter",
                batch.x.shape()[0]
            );
        }
    }
    assert_eq!(
        plan_stats().compiles - compiles_before,
        2,
        "draw/batch churn forced a recompile"
    );
}
