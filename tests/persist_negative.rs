//! Negative-path coverage for `urcl::core::persist`: every way a
//! checkpoint can be wrong must surface as a typed [`PersistError`], never
//! a panic and never a silently corrupted model.

use urcl::core::persist::{
    load_checkpoint, load_checkpoint_into, save_checkpoint, PersistError,
    CHECKPOINT_VERSION,
};
use urcl::tensor::{ParamStore, Tensor};

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("urcl-neg-{}-{name}.json", std::process::id()))
}

/// Writes `text`, loads it, cleans up, and returns the error.
fn load_text(name: &str, text: &str) -> PersistError {
    let path = temp_path(name);
    std::fs::write(&path, text).unwrap();
    let err = load_checkpoint(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    err
}

fn small_store() -> ParamStore {
    let mut store = ParamStore::new();
    store.add("enc.w", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
    store.add("enc.b", Tensor::from_vec(vec![0.5], &[1]));
    store
}

#[test]
fn truncated_file_is_a_format_error() {
    let path = temp_path("trunc");
    save_checkpoint(&path, "will be torn", &small_store()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    // Cut the document mid-token, as a crash mid-write would.
    std::fs::write(&path, &text[..text.len() * 2 / 3]).unwrap();
    let err = load_checkpoint(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(matches!(err, PersistError::Format(_)), "{err}");
}

#[test]
fn nan_payload_serialized_as_null_is_rejected() {
    // Non-finite floats serialize as JSON null; the loader must reject
    // them rather than materialize a poisoned parameter.
    let err = load_text(
        "nan",
        r#"{"version": 2, "description": "", "store": {"params": [
            {"name": "w", "shape": [2], "data": [1.0, null]}
        ]}}"#,
    );
    assert!(matches!(err, PersistError::Format(_)), "{err}");
    assert!(err.to_string().contains("data[1]"), "{err}");
}

#[test]
fn infinity_smuggled_as_overflowing_literal_is_rejected() {
    // "1e999" parses to f64::INFINITY via str::parse — the explicit
    // finiteness check must catch it even though it is "a number".
    let err = load_text(
        "inf",
        r#"{"version": 2, "description": "", "store": {"params": [
            {"name": "w", "shape": [1], "data": [1e999]}
        ]}}"#,
    );
    assert!(matches!(err, PersistError::Format(_)), "{err}");
    assert!(err.to_string().contains("non-finite"), "{err}");
}

#[test]
fn data_length_not_matching_shape_is_rejected() {
    let err = load_text(
        "shapelen",
        r#"{"version": 2, "description": "", "store": {"params": [
            {"name": "w", "shape": [2, 2], "data": [1.0, 2.0, 3.0]}
        ]}}"#,
    );
    assert!(matches!(err, PersistError::Format(_)), "{err}");
}

#[test]
fn unknown_future_version_is_a_version_error() {
    let err = load_text(
        "v3",
        r#"{"version": 3, "description": "from the future", "store": {"params": []}}"#,
    );
    let PersistError::Version(v) = err else {
        panic!("expected Version error, got {err}");
    };
    assert_eq!(v, 3);
    assert_eq!(CHECKPOINT_VERSION, 2, "bump this test when the format moves");
}

#[test]
fn missing_version_field_is_a_format_error() {
    let err = load_text("nover", r#"{"description": "", "store": {"params": []}}"#);
    assert!(matches!(err, PersistError::Format(_)), "{err}");
}

#[test]
fn v1_params_only_checkpoint_loads_forward_compatibly() {
    // A handcrafted v1 document — written before the pipeline section
    // existed — must still load, with `pipeline: None`.
    let path = temp_path("v1fwd");
    std::fs::write(
        &path,
        r#"{"version": 1, "description": "pre-v2", "store": {"params": [
            {"name": "enc.w", "shape": [2, 2], "data": [1.0, 2.0, 3.0, 4.0]},
            {"name": "enc.b", "shape": [1], "data": [0.5]}
        ]}}"#,
    )
    .unwrap();
    let mut model = small_store();
    // Zero the live store so the copy is observable.
    let ids: Vec<_> = model.ids().collect();
    for id in &ids {
        for v in model.value_mut(*id).data_mut() {
            *v = 0.0;
        }
    }
    let ckpt = load_checkpoint_into(&path, &mut model).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(ckpt.version, 1);
    assert!(ckpt.pipeline.is_none());
    assert_eq!(model.value(ids[0]).data(), &[1.0, 2.0, 3.0, 4.0]);
    assert_eq!(model.value(ids[1]).data(), &[0.5]);
}

#[test]
fn shape_mismatch_against_live_model_is_typed_and_nondestructive() {
    let path = temp_path("mismatch-shape");
    let mut wrong = ParamStore::new();
    wrong.add("enc.w", Tensor::from_vec(vec![1.0, 2.0], &[2])); // [2] vs [2, 2]
    wrong.add("enc.b", Tensor::from_vec(vec![0.5], &[1]));
    save_checkpoint(&path, "", &wrong).unwrap();

    let mut model = small_store();
    let before: Vec<Vec<f32>> = model.ids().map(|i| model.value(i).data().to_vec()).collect();
    let err = load_checkpoint_into(&path, &mut model).unwrap_err();
    std::fs::remove_file(&path).ok();
    let PersistError::Mismatch(msg) = err else {
        panic!("expected Mismatch, got {err}");
    };
    assert!(msg.contains("enc.w"), "{msg}");
    // The model was not half-written.
    let after: Vec<Vec<f32>> = model.ids().map(|i| model.value(i).data().to_vec()).collect();
    assert_eq!(before, after);
}

#[test]
fn parameter_count_and_name_mismatches_are_typed() {
    let path = temp_path("mismatch-count");
    let mut one = ParamStore::new();
    one.add("enc.w", Tensor::from_vec(vec![0.0; 4], &[2, 2]));
    save_checkpoint(&path, "", &one).unwrap();
    let mut model = small_store();
    assert!(matches!(
        load_checkpoint_into(&path, &mut model).unwrap_err(),
        PersistError::Mismatch(_)
    ));

    save_checkpoint(&path, "", &small_store()).unwrap();
    // Same shapes, different name in slot 0.
    let mut other = ParamStore::new();
    other.add("dec.w", Tensor::from_vec(vec![0.0; 4], &[2, 2]));
    other.add("enc.b", Tensor::from_vec(vec![0.0], &[1]));
    let err = load_checkpoint_into(&path, &mut other).unwrap_err();
    std::fs::remove_file(&path).ok();
    let PersistError::Mismatch(msg) = err else {
        panic!("expected Mismatch, got {err}");
    };
    assert!(msg.contains("enc.w") && msg.contains("dec.w"), "{msg}");
}

#[test]
fn corrupt_pipeline_sections_are_format_errors() {
    let store_part = r#""store": {"params": []}"#;
    // Replay overflow: more samples than capacity.
    let overflow = format!(
        r#"{{"version": 2, "description": "", {store_part}, "pipeline": {{
            "optimizer": {{"t": 0, "m": [], "v": []}},
            "rng": ["1", "0", "0", "0"],
            "replay": {{"capacity": 1, "samples": [
                {{"x": {{"shape": [1], "data": [0.0]}}, "y": {{"shape": [1], "data": [0.0]}}}},
                {{"x": {{"shape": [1], "data": [0.0]}}, "y": {{"shape": [1], "data": [0.0]}}}}
            ]}},
            "rmir": {{"virtual_updates": 0, "selected": 0}},
            "cursor": {{"period": 0, "started": false, "epoch": 0, "step": 0,
                        "order": [], "order_valid": false, "loss_curve": [],
                        "epoch_loss": 0, "batches": 0, "global_step": 0, "sets": []}},
            "periods_seen": 0
        }}}}"#
    );
    let err = load_text("replay-overflow", &overflow);
    assert!(matches!(err, PersistError::Format(_)), "{err}");
    assert!(err.to_string().contains("capacity"), "{err}");

    // All-zero RNG state would wedge xoshiro forever.
    let zero_rng = overflow
        .replace(r#"["1", "0", "0", "0"]"#, r#"["0", "0", "0", "0"]"#)
        .replace("\"capacity\": 1", "\"capacity\": 4");
    let err = load_text("zero-rng", &zero_rng);
    assert!(matches!(err, PersistError::Format(_)), "{err}");
    assert!(err.to_string().contains("zero"), "{err}");

    // Unpaired Adam moments.
    let unpaired = r#"{"version": 2, "description": "", "store": {"params": []},
        "pipeline": {"optimizer": {"t": 1,
            "m": [{"shape": [1], "data": [0.0]}], "v": []},
        "rng": ["1", "0", "0", "0"],
        "replay": {"capacity": 4, "samples": []},
        "rmir": {"virtual_updates": 0, "selected": 0},
        "cursor": {"period": 0, "started": false, "epoch": 0, "step": 0,
                   "order": [], "order_valid": false, "loss_curve": [],
                   "epoch_loss": 0, "batches": 0, "global_step": 0, "sets": []},
        "periods_seen": 0}}"#;
    let err = load_text("unpaired-adam", unpaired);
    assert!(matches!(err, PersistError::Format(_)), "{err}");

    // Inverted normalizer statistics.
    let bad_norm = unpaired.replace(
        r#""m": [{"shape": [1], "data": [0.0]}], "v": []"#,
        r#""m": [], "v": []"#,
    );
    let bad_norm = bad_norm.replace(
        r#""periods_seen": 0"#,
        r#""periods_seen": 0, "normalizer": {"mins": [2.0], "maxs": [1.0]}"#,
    );
    let err = load_text("bad-norm", &bad_norm);
    assert!(matches!(err, PersistError::Format(_)), "{err}");
    assert!(err.to_string().contains("min"), "{err}");
}
