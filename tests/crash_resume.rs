//! Kill/resume fault injection: crash-safe resumable streaming training.
//!
//! The contract under test: a training process killed at *any* step
//! boundary, restarted from its v2 checkpoint in a fresh world (different
//! init seed, nothing shared in memory), finishes the stream
//! **bitwise-identically** to a never-interrupted run — same final
//! parameters, same replay-buffer contents and occupancy, same MAE.
//!
//! Protocol:
//!
//! 1. Run a tiny URCL pipeline to completion once, recording every
//!    [`StepInfo`] — this yields the reference result and the set of kill
//!    points, and proves the kill set covers the adversarial boundaries
//!    (mid-period steps, steps right after an RMIR virtual update, steps
//!    right after replay inserts).
//! 2. For every step boundary `k`, re-run with a [`StepBudget`] of `k`
//!    (the "kill"), write a full checkpoint through the atomic
//!    [`CheckpointDir`] rotation, rebuild the world from nothing, restore
//!    from disk, resume, and compare against the reference bit for bit.
//! 3. Separately, tear the `latest` checkpoint mid-file and verify the
//!    rotation falls back to `previous` and *still* resumes bitwise.

use urcl::core::persist::copy_store_checked;
use urcl::core::{
    Ablation, CheckpointDir, ContinualTrainer, HookAction, NoopHook, PipelineState,
    RunOutcome, RunReport, StSimSiam, StepBudget, StepInfo, TrainHook, TrainerConfig,
};
use urcl::models::{GraphWaveNet, GwnConfig};
use urcl::stdata::{ContinualSplit, DatasetConfig, SyntheticDataset};
use urcl::tensor::{ParamStore, Rng};

/// Everything one training process owns. Rebuilt from scratch for every
/// resumed run so no state can leak around the checkpoint.
struct World {
    dataset: SyntheticDataset,
    split: ContinualSplit,
    scale: f32,
    store: ParamStore,
    model: GraphWaveNet,
    simsiam: StSimSiam,
    trainer: ContinualTrainer,
}

impl World {
    /// `init_seed` drives model init and the trainer RNG. The reference
    /// world and resumed worlds use *different* seeds — every bit they
    /// end up agreeing on must therefore have come through the
    /// checkpoint.
    fn new(init_seed: u64) -> Self {
        Self::with_augmentation(init_seed, true)
    }

    /// Like [`Self::new`], but with spatio-temporal augmentation
    /// switchable (off is the paper's w/o_STA ablation). Augmentation no
    /// longer decides the execution engine — augmented draws bind to
    /// promoted plan-input slots — so both settings run compiled plans
    /// when the plan engine is on.
    fn with_augmentation(init_seed: u64, augmentation: bool) -> Self {
        let mut cfg = DatasetConfig::metr_la().tiny();
        cfg.num_days = 3;
        let dataset = SyntheticDataset::generate(cfg);
        let normalizer = dataset.fit_normalizer();
        let raw = dataset.continual_split(2);
        let split = ContinualSplit {
            base: raw.base.normalized(&normalizer),
            incremental: raw
                .incremental
                .iter()
                .map(|p| p.normalized(&normalizer))
                .collect(),
        };
        let scale = normalizer.scale(dataset.config.target_channel);

        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(init_seed);
        let mut gcfg = GwnConfig::small(
            dataset.config.num_nodes,
            dataset.config.num_channels(),
            dataset.config.input_steps,
            dataset.config.output_steps,
        );
        gcfg.layers = 2;
        let model = GraphWaveNet::new(&mut store, &mut rng, &dataset.network, gcfg);
        let simsiam = StSimSiam::new(&mut store, &mut rng, 32, 32, 0.5);
        let trainer = ContinualTrainer::new(TrainerConfig {
            epochs_base: 1,
            epochs_incremental: 1,
            window_stride: 6,
            buffer_capacity: 16,
            rmir_pool: 8,
            rmir_candidates: 4,
            seed: init_seed,
            ablation: Ablation {
                augmentation,
                ..Ablation::default()
            },
            ..TrainerConfig::default()
        });
        Self {
            dataset,
            split,
            scale,
            store,
            model,
            simsiam,
            trainer,
        }
    }

    fn run_to_completion(&mut self, hook: &mut dyn TrainHook) -> RunOutcome {
        self.trainer.run_with_hook(
            &self.model,
            Some(&self.simsiam),
            &mut self.store,
            &self.dataset.network,
            &self.split,
            &self.dataset.config,
            self.scale,
            hook,
        )
    }

    fn resume(&mut self, hook: &mut dyn TrainHook) -> RunOutcome {
        self.trainer.resume_with_hook(
            &self.model,
            Some(&self.simsiam),
            &mut self.store,
            &self.dataset.network,
            &self.split,
            &self.dataset.config,
            self.scale,
            hook,
        )
    }
}

/// Records every step so the test knows the kill points and which of them
/// sit on adversarial boundaries.
#[derive(Default)]
struct Recorder {
    steps: Vec<StepInfo>,
}

impl TrainHook for Recorder {
    fn after_step(&mut self, info: &StepInfo) -> HookAction {
        self.steps.push(info.clone());
        HookAction::Continue
    }
}

fn assert_params_bitwise_equal(a: &ParamStore, b: &ParamStore, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: parameter count");
    for (ia, ib) in a.ids().zip(b.ids()) {
        assert_eq!(a.name(ia), b.name(ib), "{ctx}: parameter order");
        let (ta, tb) = (a.value(ia), b.value(ib));
        assert_eq!(ta.shape(), tb.shape(), "{ctx}: {}", a.name(ia));
        for (i, (x, y)) in ta.data().iter().zip(tb.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: {}[{i}]: {x} vs {y}",
                a.name(ia)
            );
        }
    }
}

fn assert_reports_bitwise_equal(a: &RunReport, b: &RunReport, ctx: &str) {
    assert_eq!(a.sets.len(), b.sets.len(), "{ctx}: period count");
    for (sa, sb) in a.sets.iter().zip(&b.sets) {
        assert_eq!(sa.name, sb.name, "{ctx}");
        assert_eq!(sa.mae.to_bits(), sb.mae.to_bits(), "{ctx}: {} MAE", sa.name);
        assert_eq!(sa.rmse.to_bits(), sb.rmse.to_bits(), "{ctx}: {} RMSE", sa.name);
        assert_eq!(sa.epochs, sb.epochs, "{ctx}: {} epochs", sa.name);
        assert_eq!(
            sa.loss_curve.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            sb.loss_curve.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{ctx}: {} loss curve",
            sa.name
        );
    }
}

/// Kills the reference world at step `kill_at`, checkpoints it into `dir`,
/// and returns the checkpoint size in bytes.
fn kill_and_checkpoint(dir: &CheckpointDir, kill_at: u64) -> u64 {
    kill_and_checkpoint_world(dir, kill_at, World::new(21))
}

fn kill_and_checkpoint_world(dir: &CheckpointDir, kill_at: u64, mut world: World) -> u64 {
    let outcome = world.run_to_completion(&mut StepBudget::new(kill_at));
    assert!(
        matches!(outcome, RunOutcome::Paused),
        "step budget {kill_at} should pause the run"
    );
    assert_eq!(world.trainer.global_step(), kill_at);
    let state = PipelineState {
        trainer: world.trainer.snapshot(),
        normalizer: None,
        periods_seen: 0,
    };
    dir.save(&format!("killed at step {kill_at}"), &world.store, Some(&state))
        .expect("atomic save")
}

/// Restores a fresh differently-seeded world from `dir` and drives it to
/// completion.
fn resume_from_disk(dir: &CheckpointDir) -> (World, RunReport) {
    resume_from_disk_world(dir, World::new(777))
}

fn resume_from_disk_world(dir: &CheckpointDir, mut world: World) -> (World, RunReport) {
    let ckpt = dir.load().expect("checkpoint loads");
    let state = ckpt.pipeline.as_ref().expect("full-pipeline checkpoint");
    copy_store_checked(&ckpt.store, &mut world.store).expect("layouts match");
    world.trainer.restore(state.trainer.clone());
    match world.resume(&mut NoopHook) {
        RunOutcome::Completed(report) => (world, report),
        RunOutcome::Paused => panic!("NoopHook cannot pause a resumed run"),
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("urcl-crash-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn kill_at_every_step_boundary_resumes_bitwise() {
    // Reference: one uninterrupted run.
    let mut reference = World::new(21);
    let mut recorder = Recorder::default();
    let ref_report = match reference.run_to_completion(&mut recorder) {
        RunOutcome::Completed(report) => report,
        RunOutcome::Paused => panic!("recorder never pauses"),
    };
    // The cursor resets when a run completes, so the step count comes
    // from the recorder.
    let total_steps = recorder.steps.last().expect("run trained").global_step;
    assert_eq!(recorder.steps.len() as u64, total_steps);
    assert!(
        (4..=24).contains(&total_steps),
        "harness sized for a handful of steps, got {total_steps}"
    );

    // The kill set must cover the adversarial boundaries: a mid-period
    // step (not the last of its period), a step right after an RMIR
    // virtual update, and a step right after a replay insert.
    assert!(
        recorder
            .steps
            .windows(2)
            .any(|w| w[0].period == w[1].period),
        "no mid-period step boundary in the kill set"
    );
    assert!(
        recorder.steps.iter().any(|s| s.rmir_ran),
        "no step exercised RMIR — the harness would miss that state"
    );
    assert!(
        recorder.steps.iter().any(|s| s.replay_inserted > 0),
        "no step inserted into the replay buffer"
    );
    let ref_snapshot = reference.trainer.snapshot();
    assert!(!ref_snapshot.replay.is_empty(), "replay buffer ended empty");

    // Kill at every step boundary; the last boundary is the final step,
    // where resume only has evaluation left to do.
    for kill_at in 1..=total_steps {
        let dir_path = scratch_dir(&format!("step{kill_at}"));
        let dir = CheckpointDir::new(&dir_path).unwrap();
        let bytes = kill_and_checkpoint(&dir, kill_at);
        assert!(bytes > 0);
        let (world, report) = resume_from_disk(&dir);
        std::fs::remove_dir_all(&dir_path).ok();

        let ctx = format!("kill at step {kill_at}/{total_steps}");
        assert_params_bitwise_equal(&reference.store, &world.store, &ctx);
        assert_reports_bitwise_equal(&ref_report, &report, &ctx);

        let snap = world.trainer.snapshot();
        assert_eq!(snap.replay.len(), ref_snapshot.replay.len(), "{ctx}: occupancy");
        for (i, (a, b)) in ref_snapshot.replay.iter().zip(&snap.replay).enumerate() {
            assert_eq!(
                a.x.data(),
                b.x.data(),
                "{ctx}: replay sample {i} diverged"
            );
        }
        assert_eq!(snap.rng_state, ref_snapshot.rng_state, "{ctx}: RNG stream");
        assert_eq!(snap.adam.t, ref_snapshot.adam.t, "{ctx}: Adam step count");
        assert_eq!(
            world.trainer.rmir_stats(),
            reference.trainer.rmir_stats(),
            "{ctx}: RMIR statistics"
        );
    }
}

#[test]
fn mixed_plan_interpreter_kill_resume_is_bitwise() {
    // The trainer's two execution engines — compiled-plan replay (the
    // default) and tape re-recording (`URCL_PLAN=0`) — record the
    // identical graph, so a checkpoint written by one must resume
    // bitwise on the other. This sweep kills at every step boundary and
    // crosses the engine at the crash: plan before the kill, interpreter
    // after, and vice versa. Every observable must still match the
    // uninterrupted reference.
    //
    // The worlds run the paper default (augmentation ON): every draw's
    // view signals, perturbed supports and contrastive masks bind to the
    // compiled plan's promoted input slots, so plan-engine runs replay
    // the augmented-SSL step instead of falling back — exactly the path
    // a production crash would interrupt.
    //
    // `set_plan` is process-global; flipping it mid-binary is safe
    // precisely because of the contract under test — the flag never
    // changes bits, so concurrently running tests cannot be perturbed.
    let mut reference = World::with_augmentation(21, true);
    let mut recorder = Recorder::default();
    let ref_report = match reference.run_to_completion(&mut recorder) {
        RunOutcome::Completed(report) => report,
        RunOutcome::Paused => panic!("recorder never pauses"),
    };
    let total_steps = recorder.steps.last().expect("run trained").global_step;

    for kill_at in 1..=total_steps {
        for (before, after) in [(true, false), (false, true)] {
            let dir_path = scratch_dir(&format!(
                "mixed-{}{}-step{kill_at}",
                before as u8, after as u8
            ));
            let dir = CheckpointDir::new(&dir_path).unwrap();
            let prev = urcl::tensor::set_plan(before);
            let bytes =
                kill_and_checkpoint_world(&dir, kill_at, World::with_augmentation(21, true));
            assert!(bytes > 0);
            urcl::tensor::set_plan(after);
            let (world, report) =
                resume_from_disk_world(&dir, World::with_augmentation(777, true));
            urcl::tensor::set_plan(prev);
            std::fs::remove_dir_all(&dir_path).ok();

            let engines = |on: bool| if on { "plan" } else { "interp" };
            let ctx = format!(
                "{}->{} kill at step {kill_at}/{total_steps}",
                engines(before),
                engines(after)
            );
            assert_params_bitwise_equal(&reference.store, &world.store, &ctx);
            assert_reports_bitwise_equal(&ref_report, &report, &ctx);
        }
    }
}

#[test]
fn torn_latest_checkpoint_falls_back_to_previous_and_resumes_bitwise() {
    // Reference result for comparison.
    let mut reference = World::new(21);
    let ref_report = match reference.run_to_completion(&mut NoopHook) {
        RunOutcome::Completed(report) => report,
        RunOutcome::Paused => panic!(),
    };

    let dir_path = scratch_dir("torn");
    let dir = CheckpointDir::new(&dir_path).unwrap();

    // Two checkpoints: step 1 (rotated to `previous`), then step 2.
    kill_and_checkpoint(&dir, 1);
    kill_and_checkpoint(&dir, 2);

    // The process dies mid-write of a third save: `latest` is torn.
    let text = std::fs::read_to_string(dir.latest_path()).unwrap();
    std::fs::write(dir.latest_path(), &text[..text.len() / 3]).unwrap();

    // Load falls back to `previous` (the step-1 checkpoint) and the
    // resumed run still matches the reference bit for bit.
    let ckpt = dir.load().expect("fallback to previous");
    assert!(ckpt.description.contains("step 1"), "{}", ckpt.description);
    let (world, report) = resume_from_disk(&dir);
    std::fs::remove_dir_all(&dir_path).ok();

    assert_params_bitwise_equal(&reference.store, &world.store, "torn fallback");
    assert_reports_bitwise_equal(&ref_report, &report, "torn fallback");
}
