//! Randomized invariants across the workspace, driven by the in-repo
//! [`Rng`]: tensor algebra laws, replay-buffer semantics, STMixup
//! convexity, augmentation shape preservation and normalizer
//! round-trips. Each property runs over a deterministic seed sweep so
//! failures reproduce exactly.

use urcl::core::{st_mixup, Augmentation, ReplayBuffer};
use urcl::graph::random_geometric;
use urcl::stdata::{stack_samples, Normalizer, Sample};
use urcl::tensor::{Rng, Tensor};

/// Number of randomized cases per property (matches the old proptest
/// configuration).
const CASES: u64 = 64;

fn small_vec(rng: &mut Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.uniform_range(-10.0, 10.0)).collect()
}

// ------------------------------------------------------ tensor laws

#[test]
fn tensor_add_commutes() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(100 + case);
        let a = small_vec(&mut rng, 12);
        let b = small_vec(&mut rng, 12);
        let ta = Tensor::from_vec(a, &[3, 4]);
        let tb = Tensor::from_vec(b, &[3, 4]);
        assert_eq!(ta.add(&tb), tb.add(&ta));
    }
}

#[test]
fn tensor_matmul_identity() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(200 + case);
        let t = Tensor::from_vec(small_vec(&mut rng, 16), &[4, 4]);
        let i = Tensor::eye(4);
        let left = i.matmul(&t);
        let right = t.matmul(&i);
        for (x, y) in left.data().iter().zip(t.data()) {
            assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in right.data().iter().zip(t.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}

#[test]
fn tensor_transpose_involution() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(300 + case);
        let t = Tensor::from_vec(small_vec(&mut rng, 24), &[4, 6]);
        assert_eq!(t.transpose(0, 1).transpose(0, 1), t);
    }
}

#[test]
fn tensor_softmax_is_distribution() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(400 + case);
        let t = Tensor::from_vec(small_vec(&mut rng, 20), &[4, 5]);
        let s = t.softmax(1);
        for row in 0..4 {
            let sum: f32 = s.data()[row * 5..(row + 1) * 5].iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
        assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

#[test]
fn tensor_flip_involution() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(500 + case);
        let t = Tensor::from_vec(small_vec(&mut rng, 24), &[2, 4, 3]);
        assert_eq!(t.flip(1).flip(1), t);
    }
}

#[test]
fn tensor_narrow_concat_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(600 + case);
        let t = Tensor::from_vec(small_vec(&mut rng, 24), &[2, 4, 3]);
        let cut = 1 + rng.below(2); // 1..3
        let left = t.narrow(1, 0, cut);
        let right = t.narrow(1, cut, 4 - cut);
        assert_eq!(Tensor::concat(&[&left, &right], 1), t);
    }
}

// --------------------------------------------------- replay buffer

#[test]
fn buffer_never_exceeds_capacity() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(700 + case);
        let cap = 1 + rng.below(15); // 1..16
        let pushes = rng.below(40); // 0..40
        let mut buf = ReplayBuffer::new(cap);
        for i in 0..pushes {
            buf.push(Sample {
                x: Tensor::full(&[2, 2, 1], i as f32),
                y: Tensor::full(&[1, 2], i as f32),
            });
        }
        assert!(buf.len() <= cap);
        assert_eq!(buf.len(), pushes.min(cap));
        if pushes > cap {
            // FIFO: the oldest surviving sample is `pushes - cap`.
            assert_eq!(buf.get(0).x.data()[0], (pushes - cap) as f32);
        }
    }
}

#[test]
fn buffer_uniform_sampling_within_bounds() {
    for case in 0..CASES {
        let mut seeder = Rng::seed_from_u64(800 + case);
        let k = seeder.below(20); // 0..20
        let seed = seeder.below(1000) as u64;
        let mut buf = ReplayBuffer::new(8);
        for i in 0..6 {
            buf.push(Sample {
                x: Tensor::full(&[2, 2, 1], i as f32),
                y: Tensor::full(&[1, 2], i as f32),
            });
        }
        let mut rng = Rng::seed_from_u64(seed);
        let got = buf.sample_uniform(k, &mut rng);
        assert_eq!(got.len(), k.min(6));
    }
}

// -------------------------------------------------------- mixup

#[test]
fn mixup_stays_within_convex_hull() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(900 + case);
        let cur = small_vec(&mut rng, 8);
        let rep = small_vec(&mut rng, 8);
        let alpha = rng.uniform_range(0.1, 5.0);
        let seed = rng.below(1000) as u64;
        let b = |v: &[f32]| {
            stack_samples(&[Sample {
                x: Tensor::from_vec(v.to_vec(), &[2, 2, 2]),
                y: Tensor::from_vec(v[..4].to_vec(), &[1, 4]),
            }])
        };
        let current = b(&cur);
        let replay = b(&rep);
        let mut mix_rng = Rng::seed_from_u64(seed);
        let (mixed, lambda) = st_mixup(&current, &replay, alpha, &mut mix_rng);
        assert!((0.5..=1.0).contains(&lambda), "current must dominate");
        for ((m, c), r) in mixed
            .x
            .data()
            .iter()
            .zip(current.x.data())
            .zip(replay.x.data())
        {
            let lo = c.min(*r) - 1e-4;
            let hi = c.max(*r) + 1e-4;
            assert!((lo..=hi).contains(m), "{m} outside [{lo}, {hi}]");
        }
    }
}

// -------------------------------------------------- augmentations

#[test]
fn augmentations_preserve_shape_and_finiteness() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(1000 + case);
        let net = random_geometric(8, 0.4, &mut rng);
        let x = rng.uniform_tensor(&[2, 6, 8, 2], 0.0, 1.0);
        for aug in Augmentation::default_set() {
            let view = aug.apply(&x, &net, 2, &mut rng);
            assert_eq!(view.x.shape(), x.shape());
            assert!(view.x.data().iter().all(|v| v.is_finite()));
            if let Some(s) = &view.supports {
                // Perturbed supports stay square and finite.
                for p in s.all() {
                    assert_eq!(p.shape(), &[8, 8]);
                    assert!(p.data().iter().all(|v| v.is_finite()));
                }
            }
        }
    }
}

// ---------------------------------------------------- normalizer

#[test]
fn normalizer_bounds_and_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(1100 + case);
        let data = small_vec(&mut rng, 36);
        let offset = rng.uniform_range(-5.0, 5.0);
        let series = Tensor::from_vec(data.iter().map(|v| v + offset).collect::<Vec<f32>>(), &[6, 3, 2]);
        let norm = Normalizer::fit(&series);
        let t = norm.transform(&series);
        assert!(t.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Round-trip the target channel.
        let y = t.index_select(2, &[0]).reshape(&[6, 3]);
        let back = norm.inverse_target(&y, 0);
        let orig = series.index_select(2, &[0]).reshape(&[6, 3]);
        for (a, b) in back.data().iter().zip(orig.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
