//! Property-based invariants across the workspace, checked with proptest:
//! tensor algebra laws, replay-buffer semantics, STMixup convexity,
//! augmentation shape preservation and normalizer round-trips.

use proptest::prelude::*;
use urcl::core::{st_mixup, Augmentation, ReplayBuffer};
use urcl::graph::random_geometric;
use urcl::stdata::{stack_samples, Normalizer, Sample};
use urcl::tensor::{Rng, Tensor};

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------ tensor laws

    #[test]
    fn tensor_add_commutes(a in small_vec(12), b in small_vec(12)) {
        let ta = Tensor::from_vec(a, &[3, 4]);
        let tb = Tensor::from_vec(b, &[3, 4]);
        prop_assert_eq!(ta.add(&tb), tb.add(&ta));
    }

    #[test]
    fn tensor_matmul_identity(a in small_vec(16)) {
        let t = Tensor::from_vec(a, &[4, 4]);
        let i = Tensor::eye(4);
        let left = i.matmul(&t);
        let right = t.matmul(&i);
        for (x, y) in left.data().iter().zip(t.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        for (x, y) in right.data().iter().zip(t.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn tensor_transpose_involution(a in small_vec(24)) {
        let t = Tensor::from_vec(a, &[4, 6]);
        prop_assert_eq!(t.transpose(0, 1).transpose(0, 1), t);
    }

    #[test]
    fn tensor_softmax_is_distribution(a in small_vec(20)) {
        let t = Tensor::from_vec(a, &[4, 5]);
        let s = t.softmax(1);
        for row in 0..4 {
            let sum: f32 = s.data()[row * 5..(row + 1) * 5].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn tensor_flip_involution(a in small_vec(24)) {
        let t = Tensor::from_vec(a, &[2, 4, 3]);
        prop_assert_eq!(t.flip(1).flip(1), t);
    }

    #[test]
    fn tensor_narrow_concat_roundtrip(a in small_vec(24), cut in 1usize..3) {
        let t = Tensor::from_vec(a, &[2, 4, 3]);
        let left = t.narrow(1, 0, cut);
        let right = t.narrow(1, cut, 4 - cut);
        prop_assert_eq!(Tensor::concat(&[&left, &right], 1), t);
    }

    // --------------------------------------------------- replay buffer

    #[test]
    fn buffer_never_exceeds_capacity(cap in 1usize..16, pushes in 0usize..40) {
        let mut buf = ReplayBuffer::new(cap);
        for i in 0..pushes {
            buf.push(Sample {
                x: Tensor::full(&[2, 2, 1], i as f32),
                y: Tensor::full(&[1, 2], i as f32),
            });
        }
        prop_assert!(buf.len() <= cap);
        prop_assert_eq!(buf.len(), pushes.min(cap));
        if pushes > cap {
            // FIFO: the oldest surviving sample is `pushes - cap`.
            prop_assert_eq!(buf.get(0).x.data()[0], (pushes - cap) as f32);
        }
    }

    #[test]
    fn buffer_uniform_sampling_within_bounds(k in 0usize..20, seed in 0u64..1000) {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..6 {
            buf.push(Sample {
                x: Tensor::full(&[2, 2, 1], i as f32),
                y: Tensor::full(&[1, 2], i as f32),
            });
        }
        let mut rng = Rng::seed_from_u64(seed);
        let got = buf.sample_uniform(k, &mut rng);
        prop_assert_eq!(got.len(), k.min(6));
    }

    // -------------------------------------------------------- mixup

    #[test]
    fn mixup_stays_within_convex_hull(
        cur in small_vec(8),
        rep in small_vec(8),
        alpha in 0.1f32..5.0,
        seed in 0u64..1000,
    ) {
        let b = |v: &[f32]| stack_samples(&[Sample {
            x: Tensor::from_vec(v.to_vec(), &[2, 2, 2]),
            y: Tensor::from_vec(v[..4].to_vec(), &[1, 4]),
        }]);
        let current = b(&cur);
        let replay = b(&rep);
        let mut rng = Rng::seed_from_u64(seed);
        let (mixed, lambda) = st_mixup(&current, &replay, alpha, &mut rng);
        prop_assert!((0.5..=1.0).contains(&lambda), "current must dominate");
        for ((m, c), r) in mixed.x.data().iter().zip(current.x.data()).zip(replay.x.data()) {
            let lo = c.min(*r) - 1e-4;
            let hi = c.max(*r) + 1e-4;
            prop_assert!((lo..=hi).contains(m), "{m} outside [{lo}, {hi}]");
        }
    }

    // -------------------------------------------------- augmentations

    #[test]
    fn augmentations_preserve_shape_and_finiteness(seed in 0u64..500) {
        let mut rng = Rng::seed_from_u64(seed);
        let net = random_geometric(8, 0.4, &mut rng);
        let x = rng.uniform_tensor(&[2, 6, 8, 2], 0.0, 1.0);
        for aug in Augmentation::default_set() {
            let view = aug.apply(&x, &net, 2, &mut rng);
            prop_assert_eq!(view.x.shape(), x.shape());
            prop_assert!(view.x.data().iter().all(|v| v.is_finite()));
            if let Some(s) = &view.supports {
                // Perturbed supports stay square and finite.
                for p in s.all() {
                    prop_assert_eq!(p.shape(), &[8, 8]);
                    prop_assert!(p.data().iter().all(|v| v.is_finite()));
                }
            }
        }
    }

    // ---------------------------------------------------- normalizer

    #[test]
    fn normalizer_bounds_and_roundtrip(data in small_vec(36), offset in -5.0f32..5.0) {
        let series = Tensor::from_vec(
            data.iter().map(|v| v + offset).collect(),
            &[6, 3, 2],
        );
        let norm = Normalizer::fit(&series);
        let t = norm.transform(&series);
        prop_assert!(t.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Round-trip the target channel.
        let y = t.index_select(2, &[0]).reshape(&[6, 3]);
        let back = norm.inverse_target(&y, 0);
        let orig = series.index_select(2, &[0]).reshape(&[6, 3]);
        for (a, b) in back.data().iter().zip(orig.data()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
