//! Integration tests across `urcl-models` + `urcl-core`: every deep
//! backbone must (a) produce correctly-shaped predictions, (b) train
//! through the continuous trainer, and (c) work as a URCL backbone with
//! the STSimSiam head — the generality claim of Table IV.
//!
//! Training scenarios run on a shrunk 4-day stream to keep the debug-mode
//! suite fast; the original full-size runs are gated behind `#[ignore]`
//! and prove the same properties on 2.5× more data. Run them with
//! `cargo test --test backbones -- --ignored` (or `--include-ignored`).

use urcl::core::{ContinualTrainer, Strategy, StSimSiam, TrainerConfig};
use urcl::graph::SensorNetwork;
use urcl::models::{
    Agcrn, Arima, Backbone, BackboneConfig, Dcrnn, GeoMan, GraphWaveNet, GwnConfig, Mtgnn,
    Stgcn, Stgode,
};
use urcl::stdata::{ContinualSplit, DatasetConfig, SyntheticDataset};
use urcl::tensor::autodiff::{Session, Tape};
use urcl::tensor::{ParamStore, Rng};

fn tiny_days(num_days: usize) -> (SyntheticDataset, ContinualSplit, f32) {
    let mut cfg = DatasetConfig::metr_la().tiny();
    cfg.num_days = num_days;
    let dataset = SyntheticDataset::generate(cfg);
    let normalizer = dataset.fit_normalizer();
    let raw = dataset.continual_split(2);
    let split = ContinualSplit {
        base: raw.base.normalized(&normalizer),
        incremental: raw
            .incremental
            .iter()
            .map(|p| p.normalized(&normalizer))
            .collect(),
    };
    let scale = normalizer.scale(dataset.config.target_channel);
    (dataset, split, scale)
}

fn all_backbones(
    net: &SensorNetwork,
    cfg: &DatasetConfig,
) -> Vec<(Box<dyn Backbone>, ParamStore)> {
    let base = || {
        BackboneConfig::small(
            cfg.num_nodes,
            cfg.num_channels(),
            cfg.input_steps,
            cfg.output_steps,
        )
    };
    let mut out: Vec<(Box<dyn Backbone>, ParamStore)> = Vec::new();
    {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from_u64(1);
        let mut gcfg = GwnConfig::small(
            cfg.num_nodes,
            cfg.num_channels(),
            cfg.input_steps,
            cfg.output_steps,
        );
        gcfg.layers = 2;
        out.push((
            Box::new(GraphWaveNet::new(&mut store, &mut rng, net, gcfg)),
            store,
        ));
    }
    macro_rules! push {
        ($ctor:expr) => {{
            let mut store = ParamStore::new();
            let mut rng = Rng::seed_from_u64(1);
            #[allow(clippy::redundant_closure_call)]
            let model: Box<dyn Backbone> = Box::new($ctor(&mut store, &mut rng));
            out.push((model, store));
        }};
    }
    push!(|s: &mut ParamStore, r: &mut Rng| Dcrnn::new(s, r, net, base(), 2));
    push!(|s: &mut ParamStore, r: &mut Rng| Stgcn::new(s, r, net, base(), 2, 3));
    push!(|s: &mut ParamStore, r: &mut Rng| Mtgnn::new(s, r, base(), 4));
    push!(|s: &mut ParamStore, r: &mut Rng| Agcrn::new(s, r, base(), 4));
    push!(|s: &mut ParamStore, r: &mut Rng| Stgode::new(s, r, net, base(), 3, 0.3));
    push!(|s: &mut ParamStore, r: &mut Rng| GeoMan::new(s, r, base()));
    out
}

#[test]
fn every_backbone_predicts_correct_shapes() {
    let (dataset, split, _) = tiny_days(4);
    let windows = split.base.windows(&dataset.config);
    let batch = urcl::stdata::stack_samples(&windows[..3]);
    for (model, store) in all_backbones(&dataset.network, &dataset.config) {
        let tape = Tape::new();
        let mut sess = Session::new(&tape, &store);
        let x = sess.input(batch.x.clone());
        let latent = model.encode(&mut sess, x);
        assert_eq!(
            latent.shape()[..2],
            [3, dataset.config.num_nodes],
            "{} latent shape",
            model.name()
        );
        let pred = model.decode(&mut sess, latent);
        assert_eq!(
            pred.shape(),
            vec![3, 1, dataset.config.num_nodes],
            "{} prediction shape",
            model.name()
        );
        assert!(
            pred.value().data().iter().all(|v| v.is_finite()),
            "{} produced non-finite predictions",
            model.name()
        );
    }
}

fn check_every_backbone_trains(num_days: usize, window_stride: usize) {
    let (dataset, split, scale) = tiny_days(num_days);
    for (model, mut store) in all_backbones(&dataset.network, &dataset.config) {
        let cfg = TrainerConfig {
            strategy: Strategy::FinetuneSt,
            epochs_base: 1,
            epochs_incremental: 1,
            window_stride,
            ..TrainerConfig::default()
        };
        let mut trainer = ContinualTrainer::new(cfg);
        let report = trainer.run(
            model.as_ref(),
            None,
            &mut store,
            &dataset.network,
            &split,
            &dataset.config,
            scale,
        );
        assert_eq!(report.sets.len(), 3, "{}", model.name());
        assert!(
            report.sets.iter().all(|s| s.mae.is_finite()),
            "{} diverged",
            model.name()
        );
    }
}

#[test]
fn every_backbone_trains_through_the_stream() {
    check_every_backbone_trains(4, 14);
}

/// Original full-size run over all eight backbones (slow in debug builds).
#[test]
#[ignore = "full-size stream; run with cargo test --test backbones -- --ignored"]
fn every_backbone_trains_through_the_stream_full() {
    check_every_backbone_trains(10, 10);
}

fn check_urcl_accepts_alternate_backbones(num_days: usize, window_stride: usize) {
    // Table IV: DCRNN and GeoMAN as URCL backbones.
    let (dataset, split, scale) = tiny_days(num_days);
    let base = BackboneConfig::small(
        dataset.config.num_nodes,
        dataset.config.num_channels(),
        dataset.config.input_steps,
        dataset.config.output_steps,
    );
    let candidates: Vec<(Box<dyn Backbone>, ParamStore, StSimSiam)> = {
        let mut v: Vec<(Box<dyn Backbone>, ParamStore, StSimSiam)> = Vec::new();
        {
            let mut store = ParamStore::new();
            let mut rng = Rng::seed_from_u64(2);
            let m = Dcrnn::new(&mut store, &mut rng, &dataset.network, base.clone(), 1);
            let sim = StSimSiam::new(&mut store, &mut rng, base.latent, 16, 0.5);
            v.push((Box::new(m), store, sim));
        }
        {
            let mut store = ParamStore::new();
            let mut rng = Rng::seed_from_u64(2);
            let m = GeoMan::new(&mut store, &mut rng, base.clone());
            let sim = StSimSiam::new(&mut store, &mut rng, base.latent, 16, 0.5);
            v.push((Box::new(m), store, sim));
        }
        v
    };
    for (model, mut store, sim) in candidates {
        let cfg = TrainerConfig {
            epochs_base: 1,
            epochs_incremental: 1,
            window_stride,
            ..TrainerConfig::default()
        };
        let mut trainer = ContinualTrainer::new(cfg);
        let report = trainer.run(
            model.as_ref(),
            Some(&sim),
            &mut store,
            &dataset.network,
            &split,
            &dataset.config,
            scale,
        );
        assert!(
            report.sets.iter().all(|s| s.mae.is_finite()),
            "URCL with {} backbone diverged",
            model.name()
        );
        assert!(!trainer.buffer().is_empty());
    }
}

#[test]
fn urcl_accepts_alternate_backbones() {
    check_urcl_accepts_alternate_backbones(4, 16);
}

/// Original full-size run (slow in debug builds).
#[test]
#[ignore = "full-size stream; run with cargo test --test backbones -- --ignored"]
fn urcl_accepts_alternate_backbones_full() {
    check_urcl_accepts_alternate_backbones(10, 12);
}

#[test]
fn arima_fits_and_forecasts_the_stream() {
    let (dataset, split, _) = tiny_days(4);
    let cfg = &dataset.config;
    let train = &split.base.series;
    let t = train.shape()[0];
    let target = train
        .index_select(2, &[cfg.target_channel])
        .reshape(&[t, cfg.num_nodes]);
    let model = Arima::fit(&target, 3, 0);
    let windows = split.base.windows(cfg);
    let w = &windows[10];
    let xt = w
        .x
        .index_select(2, &[cfg.target_channel])
        .reshape(&[cfg.input_steps, cfg.num_nodes]);
    let pred = model.forecast(&xt);
    assert_eq!(pred.shape(), &[1, cfg.num_nodes]);
    // Normalized data: predictions should be near [0, 1].
    assert!(pred.data().iter().all(|v| v.is_finite() && *v > -0.5 && *v < 1.5));
}
