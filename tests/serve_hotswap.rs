//! Serving-side fault injection on the crash harness's checkpoint
//! rotation: hot-swap correctness and trainer-killed-mid-publish
//! robustness.
//!
//! The contract under test extends `crash_resume`'s to the inference
//! tier: a serving process watching the trainer's [`CheckpointDir`]
//! must, after any swap, predict **bitwise-identically** to a fresh
//! process that cold-loads the same checkpoint; and when the trainer is
//! killed mid-publish (a torn `latest.ckpt`), the server must fall back
//! to `previous` — or, if nothing on disk parses, keep serving its
//! in-memory snapshot untouched.

use urcl::core::{CheckpointDir, TrainerConfig, UrclPipeline};
use urcl::serve::{BatchPolicy, ServeConfig, ServeError, Server};
use urcl::stdata::{DatasetConfig, SyntheticDataset};
use urcl::tensor::Tensor;

/// One "trainer process": a pipeline over the tiny dataset whose
/// initial weights are derived from `seed`, with fitted normalizer
/// statistics, ready to publish checkpoints. No actual gradient steps
/// are needed — distinct seeds give distinct weights, which is all the
/// swap tests require.
struct Trainer {
    ds: SyntheticDataset,
    pipe: UrclPipeline,
}

impl Trainer {
    fn new(seed: u64) -> Self {
        let mut cfg = DatasetConfig::metr_la().tiny();
        cfg.num_days = 3;
        let ds = SyntheticDataset::generate(cfg);
        let mut pipe = UrclPipeline::new(
            ds.network.clone(),
            ds.config.clone(),
            TrainerConfig::default(),
            seed,
        );
        pipe.observe_period_statistics_only(&ds.continual_split(2).base.series);
        Self { ds, pipe }
    }

    fn publish(&self, slots: &CheckpointDir, label: &str) {
        self.pipe.save_checkpoint(slots, label).unwrap();
    }

    fn window(&self, offset: usize) -> Tensor {
        self.ds
            .continual_split(2)
            .base
            .series
            .narrow(0, offset, self.ds.config.input_steps)
    }

    fn server(&self, slots: CheckpointDir) -> Server {
        let (model, template) = UrclPipeline::serving_parts(
            &self.ds.network,
            &self.ds.config,
            &TrainerConfig::default(),
        );
        Server::start(
            model,
            template,
            slots,
            ServeConfig {
                policy: BatchPolicy::default(),
                target_channel: self.ds.config.target_channel,
                shards: 1,
                ..ServeConfig::default()
            },
        )
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("urcl-hotswap-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&path).ok();
    path
}

fn assert_bitwise_eq(a: &Tensor, b: &Tensor, ctx: &str) {
    assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: element {i}: {x} vs {y}");
    }
}

/// Truncate a checkpoint file mid-byte — the on-disk state left behind
/// when the publishing process dies after the file is visible but
/// before its bytes fully land (power loss without fsync).
fn tear(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).unwrap();
    std::fs::write(path, &text[..text.len() / 2]).unwrap();
}

/// After a hot-swap, the live server's predictions are bitwise
/// identical to (a) a fresh server cold-loading the same checkpoint and
/// (b) the trainer pipeline's own `forecast` on the same weights — the
/// serving forward path *is* the training forward path.
#[test]
fn hot_swap_is_bitwise_identical_to_fresh_load() {
    let dir = tmp_dir("swap");
    let slots = CheckpointDir::new(&dir).unwrap();
    let trainer_a = Trainer::new(11);
    let trainer_b = Trainer::new(22);

    trainer_a.publish(&slots, "generation A");
    let server = trainer_a.server(CheckpointDir::new(&dir).unwrap());
    let before = server.predict(&trainer_a.window(0)).unwrap();

    // The (still running) trainer publishes new weights; the server
    // picks them up between batches.
    trainer_b.publish(&slots, "generation B");
    assert!(server.reload_now().unwrap(), "new fingerprint must swap");
    assert_eq!(server.stats().swaps, 2, "initial load + one hot-swap");

    let windows: Vec<Tensor> = (0..5).map(|i| trainer_a.window(i * 3)).collect();
    let live: Vec<Tensor> = windows
        .iter()
        .map(|w| server.predict(w).unwrap().prediction)
        .collect();

    // (a) fresh process, same checkpoint directory, cold load.
    let fresh = trainer_b.server(CheckpointDir::new(&dir).unwrap());
    for (i, w) in windows.iter().enumerate() {
        let cold = fresh.predict(w).unwrap();
        assert_bitwise_eq(&live[i], &cold.prediction, &format!("fresh load, window {i}"));
    }
    // (b) the trainer's own forward on the weights it just published.
    for (i, w) in windows.iter().enumerate() {
        assert_bitwise_eq(&live[i], &trainer_b.pipe.forecast(w), &format!("trainer forecast, window {i}"));
    }
    // And the swap was real: generation B differs from generation A.
    assert_ne!(live[0], before.prediction, "checkpoints must differ");
    std::fs::remove_dir_all(&dir).ok();
}

/// Trainer killed mid-publish: `latest.ckpt` is torn, `previous.ckpt`
/// holds the last good generation. Both a live server's reload and a
/// fresh server's cold load must land on `previous`, bitwise equal to
/// the trainer that wrote it.
#[test]
fn killed_trainer_mid_publish_falls_back_to_previous() {
    let dir = tmp_dir("torn-latest");
    let slots = CheckpointDir::new(&dir).unwrap();
    let trainer_a = Trainer::new(33);
    let trainer_b = Trainer::new(44);

    trainer_a.publish(&slots, "good generation");
    let server = trainer_a.server(CheckpointDir::new(&dir).unwrap());

    // Second publish rotates A to previous... and dies mid-write of the
    // new latest.
    trainer_b.publish(&slots, "doomed generation");
    tear(&slots.latest_path());

    // Live reload: fingerprint changed, latest is garbage, previous (A)
    // parses — the server must swap to A, not error out.
    assert!(server.reload_now().unwrap(), "fallback still counts as a swap");
    assert_eq!(server.stats().reload_failures, 0);

    let window = trainer_a.window(4);
    let live = server.predict(&window).unwrap();
    assert_bitwise_eq(
        &live.prediction,
        &trainer_a.pipe.forecast(&window),
        "fallback generation",
    );

    // A fresh process over the torn directory reaches the same weights.
    let fresh = trainer_a.server(CheckpointDir::new(&dir).unwrap());
    let cold = fresh.predict(&window).unwrap();
    assert_bitwise_eq(&live.prediction, &cold.prediction, "cold load after tear");
    std::fs::remove_dir_all(&dir).ok();
}

/// Worst case: both rotation slots are torn. Reload reports a typed
/// error, the failure counter ticks, and the server keeps serving its
/// in-memory snapshot bitwise-unchanged — a dead trainer must never
/// take the serving tier down with it.
#[test]
fn torn_rotation_keeps_serving_old_snapshot() {
    let dir = tmp_dir("torn-both");
    let slots = CheckpointDir::new(&dir).unwrap();
    let trainer = Trainer::new(55);
    trainer.publish(&slots, "gen 1");
    trainer.publish(&slots, "gen 2"); // populate previous.ckpt too

    let server = trainer.server(CheckpointDir::new(&dir).unwrap());
    let window = trainer.window(2);
    let before = server.predict(&window).unwrap();
    let generation = server.generation();

    tear(&slots.latest_path());
    tear(&slots.previous_path());

    match server.reload_now() {
        Err(ServeError::Reload(_)) => {}
        other => panic!("expected Reload error, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.reload_failures, 1);
    assert_eq!(server.generation(), generation, "generation must not advance");

    let after = server.predict(&window).unwrap();
    assert_bitwise_eq(&before.prediction, &after.prediction, "old snapshot");
    assert_eq!(before.generation, after.generation);

    // The bad fingerprint is remembered: an unchanged torn file is not
    // re-parsed on the next poll (no second failure tick).
    assert!(!server.reload_now().unwrap_or(true));
    assert_eq!(server.stats().reload_failures, 1);
    std::fs::remove_dir_all(&dir).ok();
}
